#include "success/simulate.hpp"

namespace ccfsp {

namespace {

struct EnabledMove {
  std::uint32_t mover;
  std::uint32_t partner;
  ActionId action;
  StateId mover_target;
  StateId partner_target;
};

std::vector<EnabledMove> enabled_moves(const Network& net, const std::vector<StateId>& tuple) {
  std::vector<EnabledMove> moves;
  const std::size_t m = net.size();
  for (std::uint32_t i = 0; i < m; ++i) {
    const Fsp& pi = net.process(i);
    for (const auto& t : pi.out(tuple[i])) {
      if (t.action == kTau) {
        moves.push_back({i, i, kTau, t.target, 0});
        continue;
      }
      for (std::uint32_t j = static_cast<std::uint32_t>(i) + 1; j < m; ++j) {
        const Fsp& pj = net.process(j);
        if (!pj.sigma_set().test(t.action)) continue;
        for (const auto& u : pj.out(tuple[j])) {
          if (u.action == t.action) {
            moves.push_back({i, j, t.action, t.target, u.target});
          }
        }
      }
    }
  }
  return moves;
}

}  // namespace

SimulationResult simulate_random(const Network& net, std::uint64_t seed,
                                 std::size_t max_steps) {
  Rng rng(seed);
  SimulationResult result;
  std::vector<StateId> tuple(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) tuple[i] = net.process(i).start();

  for (std::size_t step = 0; step < max_steps; ++step) {
    auto moves = enabled_moves(net, tuple);
    if (moves.empty()) {
      result.stuck = true;
      break;
    }
    const EnabledMove& mv = moves[rng.below(moves.size())];
    tuple[mv.mover] = mv.mover_target;
    if (mv.partner != mv.mover) tuple[mv.partner] = mv.partner_target;
    result.steps.push_back({mv.mover, mv.partner, mv.action});
  }
  result.final_tuple = tuple;
  return result;
}

std::string format_schedule(const Network& net, const SimulationResult& result) {
  std::string out;
  for (const auto& step : result.steps) {
    if (step.mover == step.partner) {
      out += "  " + net.process(step.mover).name() + ": tau\n";
    } else {
      out += "  " + net.process(step.mover).name() + " --" +
             net.alphabet()->name(step.action) + "-- " + net.process(step.partner).name() +
             "\n";
    }
  }
  out += result.stuck ? "  (stuck)\n" : "  (still running)\n";
  return out;
}

}  // namespace ccfsp
