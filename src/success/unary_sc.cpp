#include "success/unary_sc.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "ilp/ilp.hpp"
#include "util/graph.hpp"

namespace ccfsp {

namespace {

struct EdgeRec {
  StateId from;
  StateId to;
  ActionId action;
};

struct WalkResult {
  bool feasible = false;
  bool unbounded = false;
  BigInt best;  // max objective over feasible walks (when bounded)
};

/// Maximize the number of `objective`-labeled edge traversals over walks of
/// `machine` that start at its start state, end in an `allowed_end` state,
/// and traverse each budgeted symbol at most its budget. Implemented as an
/// exact ILP per (end state, edge-support subset): integer edge
/// multiplicities with walk balance constraints; a support-connected
/// balanced multiset of edges is realizable as an Eulerian walk.
WalkResult maximize_walk(const Fsp& machine, ActionId objective,
                         const std::vector<std::pair<ActionId, BigInt>>& finite_budgets,
                         const std::vector<bool>& allowed_end) {
  std::vector<EdgeRec> edges;
  for (StateId s = 0; s < machine.num_states(); ++s) {
    for (const auto& t : machine.out(s)) edges.push_back({s, t.target, t.action});
  }
  if (edges.size() > 20) {
    throw std::logic_error("maximize_walk: machine too large (Theorem 4 expects O(1) size)");
  }
  std::map<ActionId, BigInt> budget;
  for (const auto& [a, b] : finite_budgets) budget.emplace(a, b);

  WalkResult result;
  if (allowed_end[machine.start()]) {
    result.feasible = true;  // the empty walk
    result.best = BigInt(0);
  }

  const std::size_t ne = edges.size();
  for (std::size_t mask = 1; mask < (1u << ne); ++mask) {
    // Support connectivity: all endpoints of chosen edges reachable from
    // start in the undirected sense over chosen edges.
    std::vector<bool> in_support(machine.num_states(), false);
    in_support[machine.start()] = true;
    bool grew = true;
    while (grew) {
      grew = false;
      for (std::size_t e = 0; e < ne; ++e) {
        if (!(mask & (1u << e))) continue;
        bool f = in_support[edges[e].from], t = in_support[edges[e].to];
        if (f != t) {
          in_support[edges[e].from] = in_support[edges[e].to] = true;
          grew = true;
        }
      }
    }
    bool connected = true;
    for (std::size_t e = 0; e < ne && connected; ++e) {
      if ((mask & (1u << e)) && !(in_support[edges[e].from] && in_support[edges[e].to])) {
        connected = false;
      }
    }
    if (!connected) continue;

    for (StateId end = 0; end < machine.num_states(); ++end) {
      if (!allowed_end[end]) continue;
      if (!in_support[end] && end != machine.start()) continue;

      LinearProgram lp;
      // One variable per chosen edge.
      std::vector<std::size_t> var_of(ne, SIZE_MAX);
      for (std::size_t e = 0; e < ne; ++e) {
        if (mask & (1u << e)) var_of[e] = lp.num_vars++;
      }
      lp.objective.assign(lp.num_vars, Rational());
      for (std::size_t e = 0; e < ne; ++e) {
        if (var_of[e] != SIZE_MAX && edges[e].action == objective) {
          lp.objective[var_of[e]] = Rational(1);
        }
      }
      // x_e >= 1 on the support.
      for (std::size_t e = 0; e < ne; ++e) {
        if (var_of[e] == SIZE_MAX) continue;
        LinearConstraint c;
        c.coeffs.assign(lp.num_vars, Rational());
        c.coeffs[var_of[e]] = Rational(1);
        c.relation = Relation::kGreaterEqual;
        c.rhs = Rational(1);
        lp.constraints.push_back(std::move(c));
      }
      // Walk balance: out(v) - in(v) = [v == start] - [v == end].
      for (StateId v = 0; v < machine.num_states(); ++v) {
        LinearConstraint c;
        c.coeffs.assign(lp.num_vars, Rational());
        bool touches = false;
        for (std::size_t e = 0; e < ne; ++e) {
          if (var_of[e] == SIZE_MAX) continue;
          if (edges[e].from == v) {
            c.coeffs[var_of[e]] += Rational(1);
            touches = true;
          }
          if (edges[e].to == v) {
            c.coeffs[var_of[e]] -= Rational(1);
            touches = true;
          }
        }
        int rhs = (v == machine.start() ? 1 : 0) - (v == end ? 1 : 0);
        if (!touches && rhs == 0) continue;
        c.relation = Relation::kEqual;
        c.rhs = Rational(rhs);
        lp.constraints.push_back(std::move(c));
      }
      // Budgets.
      for (const auto& [sym, bound] : budget) {
        LinearConstraint c;
        c.coeffs.assign(lp.num_vars, Rational());
        bool touches = false;
        for (std::size_t e = 0; e < ne; ++e) {
          if (var_of[e] != SIZE_MAX && edges[e].action == sym) {
            c.coeffs[var_of[e]] = Rational(1);
            touches = true;
          }
        }
        if (!touches) continue;
        c.relation = Relation::kLessEqual;
        c.rhs = Rational(bound);
        lp.constraints.push_back(std::move(c));
      }

      IlpResult r = solve_ilp(lp);
      if (r.status == IlpStatus::kUnbounded) {
        result.feasible = true;
        result.unbounded = true;
        return result;
      }
      if (r.status == IlpStatus::kOptimal) {
        result.feasible = true;
        BigInt value = r.objective.num();  // integral: vars integer, coeffs 0/1
        if (value > result.best) result.best = value;
      }
    }
  }
  return result;
}

}  // namespace

UnaryBound unary_reduction_step(const Fsp& machine, ActionId parent_symbol,
                                const std::vector<std::pair<ActionId, UnaryBound>>& budgets) {
  std::vector<std::pair<ActionId, BigInt>> finite;
  for (const auto& [a, b] : budgets) {
    if (!b.infinite) finite.emplace_back(a, b.count);
  }
  std::vector<bool> all_ends(machine.num_states(), true);
  WalkResult r = maximize_walk(machine, parent_symbol, finite, all_ends);
  if (r.unbounded) return UnaryBound::inf();
  if (!r.feasible) return UnaryBound::of(BigInt(0));  // cannot happen: empty walk
  return UnaryBound::of(r.best);
}

UnaryScResult unary_success_collab(const Network& net, std::size_t p_index) {
  if (!net.is_tree_network()) {
    throw std::logic_error("unary_success_collab: C_N must be a tree");
  }
  for (auto [i, j] : net.comm_graph().edges()) {
    if (net.shared_actions(i, j).count() != 1) {
      throw std::logic_error("unary_success_collab: every edge must carry one symbol");
    }
  }

  // Root the communication tree at P; compute each neighbor subtree's
  // budget on its edge symbol by post-order propagation.
  const std::size_t m = net.size();
  std::vector<std::vector<std::size_t>> adj(m);
  for (auto [i, j] : net.comm_graph().edges()) {
    adj[i].push_back(j);
    adj[j].push_back(i);
  }

  auto edge_symbol = [&](std::size_t i, std::size_t j) {
    return static_cast<ActionId>(net.shared_actions(i, j).find_first());
  };

  // Budget that the subtree rooted at `v` (entered from `parent`) offers on
  // the v-parent edge symbol.
  auto subtree_budget = [&](auto&& self, std::size_t v, std::size_t parent) -> UnaryBound {
    std::vector<std::pair<ActionId, UnaryBound>> child_budgets;
    for (std::size_t w : adj[v]) {
      if (w == parent) continue;
      child_budgets.emplace_back(edge_symbol(v, w), self(self, w, v));
    }
    return unary_reduction_step(net.process(v), edge_symbol(v, parent), child_budgets);
  };

  UnaryScResult result;
  std::vector<std::pair<ActionId, BigInt>> finite;
  ActionSet unbounded_symbols(net.alphabet()->size());
  for (std::size_t w : adj[p_index]) {
    ActionId sym = edge_symbol(p_index, w);
    UnaryBound b = subtree_budget(subtree_budget, w, p_index);
    result.root_budgets.emplace_back(sym, b);
    if (b.infinite) {
      unbounded_symbols.set(sym);
    } else {
      finite.emplace_back(sym, b.count);
    }
  }

  // Free-cycle states of P: on a cycle whose edges use only unbounded
  // symbols (tau included, though Section 4 processes have none).
  const Fsp& p = net.process(p_index);
  Digraph free_graph(p.num_states());
  for (StateId s = 0; s < p.num_states(); ++s) {
    for (const auto& t : p.out(s)) {
      if (t.action == kTau || unbounded_symbols.test(t.action)) {
        free_graph.add_edge(s, t.target);
      }
    }
  }
  auto scc = free_graph.scc();
  std::vector<std::size_t> comp_size(scc.num_components, 0);
  for (StateId s = 0; s < p.num_states(); ++s) ++comp_size[scc.component[s]];
  std::vector<bool> on_free_cycle(p.num_states(), false);
  for (StateId s = 0; s < p.num_states(); ++s) {
    if (comp_size[scc.component[s]] > 1) on_free_cycle[s] = true;
    for (const auto& t : p.out(s)) {
      if (t.target == s && (t.action == kTau || unbounded_symbols.test(t.action))) {
        on_free_cycle[s] = true;
      }
    }
  }

  // S_c holds iff P can afford a walk from its start to a free cycle.
  WalkResult r = maximize_walk(p, kTau /*count nothing*/, finite, on_free_cycle);
  result.success_collab = r.feasible;
  return result;
}

}  // namespace ccfsp
