// Theorem 3, end to end: for a network of tree processes whose C_N is a
// k-tree, decide S_u, S_a, S_c in polynomial time by
//  (1) composing each partition part into one process (k-tree -> tree),
//  (2) reducing every subtree of the quotient tree, leaves first, to its
//      possibility normal form (the Reduction Step; sound by Lemmas 2-5),
//  (3) deciding the resulting star network around P with Lemmas 3, 4, 5.
#pragma once

#include <cstddef>
#include <optional>

#include "network/ktree.hpp"
#include "network/network.hpp"
#include "util/budget.hpp"

namespace ccfsp {

struct Theorem3Options {
  /// Ablation switch: when false, subtrees are composed but never replaced
  /// by their possibility normal forms, exposing how much of the polynomial
  /// bound the normal form is responsible for.
  bool use_normal_form = true;
  /// When true (default), reductions run on the flat kernels: normal forms
  /// via the annotated-DFA unfolding, children folded *incrementally* (the
  /// accumulator is re-normalized after every child composition, which is
  /// sound because the normal form preserves possibility equivalence and
  /// possibility equivalence is a congruence for ||, and keeps composites
  /// small instead of letting the children's router fans multiply), and the
  /// star step on the flat determinizer. When false the full pre-flat
  /// pipeline runs — batch composition, reference normal forms, reference
  /// star DFAs — which is the bench baseline and the correctness oracle.
  bool use_flat_kernels = true;
  /// Memoize subtree normal forms by canonical structure fingerprint
  /// (fsp/cache.hpp): families whose subtrees repeat up to action renaming
  /// (wave, ktree) fold each distinct shape once. Flat path only.
  bool memoize = true;
  /// Byte cap for the normal-form memo's stored blueprints.
  std::size_t memo_max_bytes = 64u << 20;
  /// Cap for possibility extraction on intermediate composites.
  std::size_t poss_limit = 1u << 20;
  /// Optional resource budget (not owned): charged for every intermediate
  /// composite state and possibility extracted, and polled for deadline /
  /// cancellation. Trips as BudgetExceeded.
  const Budget* budget = nullptr;
};

struct Theorem3Result {
  bool unavoidable_success = false;           // S_u
  bool success_collab = false;                // S_c
  /// S_a; absent when P has tau moves (the Figure 4 assumption fails).
  std::optional<bool> success_adversity;

  // Diagnostics for the benches.
  std::size_t partition_width = 0;            // the k of the k-tree used
  std::size_t max_intermediate_states = 0;    // largest composite seen
  std::size_t max_normal_form_states = 0;     // largest normal form kept
  std::size_t memo_hits = 0;                  // subtree-NF memo hits
  std::size_t memo_misses = 0;                // subtree-NF memo misses
};

/// Decide all three predicates for net.process(p_index). Requires every
/// process acyclic (the Section 3 setting; trees for the stated bound —
/// DAGs are accepted and simply cost more). A partition may be supplied;
/// otherwise the block-cut partition of C_N is used.
Theorem3Result theorem3_decide(const Network& net, std::size_t p_index,
                               const Theorem3Options& opt = {},
                               const KTreePartition* partition = nullptr);

}  // namespace ccfsp
