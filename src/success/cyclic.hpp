// Section 4 deciders for networks of cyclic processes, in two flavors:
// the explicit two-process analysis (exponential, Proposition 2's upper
// bounds) and the tree-structured heuristic the paper advocates — compose
// leaves-to-root with the ||' operator, shrinking intermediate composites
// with sound (possibility-preserving) reductions: strong-bisimulation
// quotients and trivial-tau compression. Exact possibility normal forms
// would be PSPACE-hard here [KS]; the heuristic trades canonicity for
// soundness and is validated against the explicit deciders.
#pragma once

#include <cstddef>
#include <optional>

#include "network/ktree.hpp"
#include "network/network.hpp"
#include "util/budget.hpp"

namespace ccfsp {

struct CyclicDecision {
  bool potential_blocking = false;          // not S_u
  bool success_collab = false;              // S_c: P can run forever with help
  std::optional<bool> success_adversity;    // S_a; absent if P has tau moves

  std::size_t max_intermediate_states = 0;  // diagnostics
};

/// Explicit analysis on the global machine / composed context. The budgeted
/// overload builds G once and charges the context composition and the
/// knowledge-set game against the same budget; it throws BudgetExceeded
/// rather than ever answering from a truncated machine.
CyclicDecision cyclic_decide_explicit(const Network& net, std::size_t p_index,
                                      const Budget& budget);
CyclicDecision cyclic_decide_explicit(const Network& net, std::size_t p_index,
                                      std::size_t max_states = 1u << 22);

struct CyclicHeuristicOptions {
  bool use_bisimulation = true;   // quotient composites by strong bisimulation
  bool use_tau_compression = true;  // merge pass-through tau states
};

/// Tree-structured heuristic: hierarchical ||' composition over the k-tree
/// partition of C_N with sound reduction after every step, then the
/// explicit deciders on the (small) final two-process system.
CyclicDecision cyclic_decide_tree(const Network& net, std::size_t p_index,
                                  const CyclicHeuristicOptions& opt,
                                  const Budget& budget);
CyclicDecision cyclic_decide_tree(const Network& net, std::size_t p_index,
                                  const CyclicHeuristicOptions& opt = {},
                                  std::size_t max_states = 1u << 22);

}  // namespace ccfsp
