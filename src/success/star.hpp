// The Final Step of Theorem 3: deciding the three success predicates on a
// star network — a distinguished *tree* process P at the center, and
// context factors Q_1 ... Q_l each of which shares symbols with P only
// (their own alphabets are pairwise disjoint). Although prod_i Q_i can be
// huge, there is no interaction between the Q_i, so every query decomposes
// into independent per-factor queries against Lang(Q_i) / Poss(Q_i):
//   Lemma 3 (S_c):    some (s, {}) in Poss(P) with s|_i in Lang(Q_i) for all i,
//   Lemma 4 (~S_u):   some (s, X) in Poss(P), X nonempty, and per factor a
//                     possibility (s|_i, Y_i) with X cap Y_i empty,
//   Lemma 5 (S_a):    bottom-up game evaluation over P's tree against the
//                     factors' possibility automata.
#pragma once

#include <vector>

#include "fsp/fsp.hpp"

namespace ccfsp {

/// A star context: the factors Q_i. Alphabets of distinct factors must be
/// disjoint; every factor symbol must be shared with P.
struct StarContext {
  std::vector<const Fsp*> factors;
  /// Build factor possibility DFAs with annotated_determinize_reference
  /// instead of the flat kernel — lets the Theorem 3 oracle mode run the
  /// full pre-flat pipeline end to end (both produce equal DFAs, tested).
  bool use_reference_kernels = false;
};

bool star_success_collab(const Fsp& p, const StarContext& ctx);
bool star_potential_blocking(const Fsp& p, const StarContext& ctx);
/// Requires P tau-free (Figure 4 assumption), like the game solver.
bool star_success_adversity(const Fsp& p, const StarContext& ctx);

}  // namespace ccfsp
