#include "success/tree_pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "algebra/compose.hpp"
#include "fsp/cache.hpp"
#include "semantics/normal_form.hpp"
#include "success/star.hpp"
#include "util/metrics.hpp"

namespace ccfsp {

namespace {

struct PipelineState {
  const Network* net;
  const Theorem3Options* opt;
  Theorem3Result* result;
  NormalFormMemo* memo = nullptr;  // non-null only on the memoized flat path
  std::vector<std::vector<std::size_t>> quotient_adj;  // part -> neighbor parts
  std::vector<std::vector<std::size_t>> part_members;
};

void note_size(Theorem3Result& r, const Fsp& composite, const Fsp& reduced) {
  r.max_intermediate_states = std::max(r.max_intermediate_states, composite.num_states());
  r.max_normal_form_states = std::max(r.max_normal_form_states, reduced.num_states());
}

/// Compose all members of a part into one process.
Fsp compose_part(const PipelineState& st, std::size_t part) {
  std::vector<const Fsp*> members;
  for (std::size_t i : st.part_members[part]) members.push_back(&st.net->process(i));
  return compose_all(members, /*cyclic=*/false, st.opt->budget);
}

/// Possibility normal form of one composite through the configured path:
/// memo lookup (flat path), flat kernel with memo store, or the reference
/// extract-then-rebuild oracle.
Fsp normal_form_of(const PipelineState& st, const Fsp& acc) {
  if (!st.opt->use_flat_kernels) {
    Fsp nf = poss_normal_form_reference(acc, st.opt->poss_limit, st.opt->budget);
    note_size(*st.result, acc, nf);
    return nf;
  }
  if (st.memo) {
    if (std::optional<Fsp> hit = st.memo->find(acc, st.opt->poss_limit, st.opt->budget)) {
      note_size(*st.result, acc, *hit);
      return std::move(*hit);
    }
  }
  std::shared_ptr<const NfLabelShape> shape;
  Fsp nf = poss_normal_form(acc, st.opt->poss_limit, st.opt->budget, &shape);
  if (st.memo) st.memo->store(acc, nf, shape, st.opt->budget);
  note_size(*st.result, acc, nf);
  return nf;
}

/// Post-order reduction of the subtree rooted at `part` (entered from
/// `parent`, or -1 for a root): returns the possibility normal form of the
/// whole subtree's composition, whose Sigma is the subtree's external
/// symbols (those shared with the parent part).
Fsp reduce_subtree(const PipelineState& st, std::size_t part, std::size_t parent) {
  Fsp acc = compose_part(st, part);
  bool normalized = false;
  for (std::size_t child : st.quotient_adj[part]) {
    if (child == parent) continue;
    Fsp child_nf = reduce_subtree(st, child, part);
    acc = compose(acc, child_nf, st.opt->budget);
    if (st.opt->use_flat_kernels && st.opt->use_normal_form) {
      // Incremental fold (see Theorem3Options::use_flat_kernels): normalize
      // after every child so the children's tau router fans never multiply
      // into one giant composite, and so the per-step composites repeat
      // across tree nodes, which is what makes the memo hit.
      acc = normal_form_of(st, acc);
      normalized = true;
    }
  }
  if (!st.opt->use_normal_form) {
    st.result->max_intermediate_states =
        std::max(st.result->max_intermediate_states, acc.num_states());
    return acc;
  }
  // After an incremental fold the accumulator already *is* the normal form
  // of the whole subtree composite (the last fold step normalized it).
  if (normalized) return acc;
  return normal_form_of(st, acc);
}

}  // namespace

Theorem3Result theorem3_decide(const Network& net, std::size_t p_index,
                               const Theorem3Options& opt, const KTreePartition* partition) {
  metrics::ScopedSpan span("theorem3");
  if (!net.all_acyclic()) {
    throw std::logic_error("theorem3_decide: Section 3 requires acyclic processes");
  }
  KTreePartition computed;
  if (!partition) {
    computed = ktree_partition(net);
    partition = &computed;
  } else if (!is_valid_ktree_partition(net, *partition)) {
    throw std::logic_error("theorem3_decide: supplied partition is not a k-tree partition");
  }

  Theorem3Result result;
  result.partition_width = partition->width;

  PipelineState st;
  st.net = &net;
  st.opt = &opt;
  st.result = &result;
  // An installed SharedCacheRegistry (the ccfspd server) supplies a
  // cross-request memo; every find/store passes this run's budget
  // explicitly, so a shared memo never charges a stale budget.
  NormalFormMemo local_memo(opt.memo_max_bytes, opt.budget);
  SharedCacheRegistry* registry = SharedCacheRegistry::current();
  NormalFormMemo& memo = registry ? registry->memo() : local_memo;
  if (opt.use_flat_kernels && opt.memoize && opt.use_normal_form) st.memo = &memo;
  st.part_members = partition->parts;
  st.quotient_adj.assign(partition->parts.size(), {});
  for (auto [a, b] : partition->quotient_edges) {
    st.quotient_adj[a].push_back(b);
    st.quotient_adj[b].push_back(a);
  }

  const std::size_t root_part = partition->part_of(p_index);
  const Fsp& p = net.process(p_index);

  // Reduce every subtree hanging off the root part.
  std::vector<Fsp> child_nfs;
  std::vector<std::size_t> child_parts;
  for (std::size_t child : st.quotient_adj[root_part]) {
    child_nfs.push_back(reduce_subtree(st, child, root_part));
    child_parts.push_back(child);
  }
  // Quotient-forest components not containing the root still gate global
  // stability; reduce each to a (tiny, all-internal) factor.
  {
    std::vector<bool> seen(partition->parts.size(), false);
    std::vector<std::size_t> stack{root_part};
    seen[root_part] = true;
    while (!stack.empty()) {
      std::size_t v = stack.back();
      stack.pop_back();
      for (std::size_t w : st.quotient_adj[v]) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
    for (std::size_t part = 0; part < partition->parts.size(); ++part) {
      if (!seen[part]) {
        // Reduce this whole stray component rooted at `part`.
        seen[part] = true;  // reduce_subtree's parent guard handles revisits below
        child_nfs.push_back(reduce_subtree(st, part, static_cast<std::size_t>(-1)));
        child_parts.push_back(part);
        // Mark its whole component visited.
        std::vector<std::size_t> s2{part};
        while (!s2.empty()) {
          std::size_t v = s2.back();
          s2.pop_back();
          for (std::size_t w : st.quotient_adj[v]) {
            if (!seen[w]) {
              seen[w] = true;
              s2.push_back(w);
            }
          }
        }
      }
    }
  }

  // Split the star: factors touching only P stay independent; everything
  // else (other root-part members plus the child subtrees touching them)
  // folds into one residue factor R.
  ActionSet p_sigma = p.sigma_set();
  std::vector<const Fsp*> root_others;
  for (std::size_t i : st.part_members[root_part]) {
    if (i != p_index) root_others.push_back(&net.process(i));
  }
  ActionSet others_sigma(net.alphabet()->size());
  for (const Fsp* f : root_others) others_sigma |= f->sigma_set();

  std::vector<Fsp> factors;
  std::vector<const Fsp*> residue = root_others;
  for (auto& nf : child_nfs) {
    if (!root_others.empty() && nf.sigma_set().intersects(others_sigma)) {
      residue.push_back(&nf);
    } else {
      factors.push_back(std::move(nf));
    }
  }
  if (!residue.empty()) {
    Fsp r = compose_all(residue, /*cyclic=*/false, opt.budget);
    if (opt.use_normal_form) {
      factors.push_back(normal_form_of(st, r));
    } else {
      result.max_intermediate_states =
          std::max(result.max_intermediate_states, r.num_states());
      factors.push_back(std::move(r));
    }
  }

  StarContext ctx;
  ctx.use_reference_kernels = !opt.use_flat_kernels;
  for (const auto& f : factors) ctx.factors.push_back(&f);

  result.success_collab = star_success_collab(p, ctx);
  result.unavoidable_success = !star_potential_blocking(p, ctx);
  if (!p.has_tau_moves() && p.is_tree()) {
    result.success_adversity = star_success_adversity(p, ctx);
  }
  result.memo_hits = memo.hits();
  result.memo_misses = memo.misses();
  return result;
}

}  // namespace ccfsp
