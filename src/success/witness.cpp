#include "success/witness.hpp"

#include <queue>

#include "util/graph.hpp"

namespace ccfsp {

namespace {

/// BFS from the initial tuple to the nearest state satisfying `goal`;
/// reconstructs the edge sequence.
template <typename Goal>
std::optional<Witness> shortest_to(const Network& net, const GlobalMachine& g, Goal&& goal) {
  constexpr std::uint32_t kUnseen = UINT32_MAX;
  std::vector<std::uint32_t> parent(g.num_states(), kUnseen);
  std::vector<std::uint32_t> via(g.num_states(), kUnseen);  // edge index taken
  std::queue<std::uint32_t> queue;
  parent[0] = 0;
  queue.push(0);
  std::uint32_t found = kUnseen;
  while (!queue.empty() && found == kUnseen) {
    std::uint32_t cur = queue.front();
    queue.pop();
    if (goal(cur)) {
      found = cur;
      break;
    }
    for (std::uint32_t k = g.edge_offsets[cur]; k < g.edge_offsets[cur + 1]; ++k) {
      const std::uint32_t t = g.target(k);
      if (parent[t] == kUnseen) {
        parent[t] = cur;
        via[t] = k;
        queue.push(t);
      }
    }
  }
  if (found == kUnseen) return std::nullopt;

  Witness w;
  w.final_tuple = g.tuple_vec(found);
  std::vector<WitnessStep> rev;
  for (std::uint32_t cur = found; cur != 0;) {
    const std::uint32_t k = via[cur];
    rev.push_back({g.mover(k), g.partner(k), g.tuple_vec(cur)});
    cur = parent[cur];
  }
  w.steps.assign(rev.rbegin(), rev.rend());
  (void)net;
  return w;
}

}  // namespace

std::optional<Witness> blocking_witness(const Network& net, std::size_t p_index,
                                        const Budget& budget) {
  GlobalMachine g = build_global(net, budget);
  return shortest_to(net, g, [&](std::uint32_t s) {
    return g.is_stuck(s) && !net.process(p_index).is_leaf(g.local_state(s, p_index));
  });
}

std::optional<Witness> blocking_witness(const Network& net, std::size_t p_index,
                                        std::size_t max_states) {
  return blocking_witness(net, p_index, Budget::with_states(max_states));
}

std::optional<Witness> collab_witness(const Network& net, std::size_t p_index,
                                      const Budget& budget) {
  GlobalMachine g = build_global(net, budget);
  return shortest_to(net, g, [&](std::uint32_t s) {
    return g.is_stuck(s) && net.process(p_index).is_leaf(g.local_state(s, p_index));
  });
}

std::optional<Witness> collab_witness(const Network& net, std::size_t p_index,
                                      std::size_t max_states) {
  return collab_witness(net, p_index, Budget::with_states(max_states));
}

namespace {

/// BFS over a restricted edge set; returns the step sequence from `from` to
/// the first node satisfying `goal`, or nullopt. `allow` filters by edge
/// index into the CSR columns.
template <typename Goal, typename Allow>
std::optional<std::vector<WitnessStep>> bfs_path(const GlobalMachine& g, std::uint32_t from,
                                                 Goal&& goal, Allow&& allow) {
  constexpr std::uint32_t kUnseen = UINT32_MAX;
  std::vector<std::uint32_t> parent(g.num_states(), kUnseen);
  std::vector<std::uint32_t> via(g.num_states(), kUnseen);  // edge index taken
  std::queue<std::uint32_t> queue;
  parent[from] = from;
  queue.push(from);
  std::uint32_t found = kUnseen;
  while (!queue.empty()) {
    std::uint32_t cur = queue.front();
    queue.pop();
    if (goal(cur)) {
      found = cur;
      break;
    }
    for (std::uint32_t k = g.edge_offsets[cur]; k < g.edge_offsets[cur + 1]; ++k) {
      if (!allow(k)) continue;
      const std::uint32_t t = g.target(k);
      if (parent[t] == kUnseen) {
        parent[t] = cur;
        via[t] = k;
        queue.push(t);
      }
    }
  }
  if (found == kUnseen) return std::nullopt;
  std::vector<WitnessStep> rev;
  for (std::uint32_t cur = found; cur != from;) {
    const std::uint32_t k = via[cur];
    rev.push_back({g.mover(k), g.partner(k), g.tuple_vec(cur)});
    cur = parent[cur];
  }
  return std::vector<WitnessStep>(rev.rbegin(), rev.rend());
}

}  // namespace

std::optional<LassoWitness> cyclic_blocking_witness(const Network& net, std::size_t p_index,
                                                    std::size_t max_states) {
  return cyclic_blocking_witness(net, p_index, Budget::with_states(max_states));
}

std::optional<LassoWitness> cyclic_blocking_witness(const Network& net, std::size_t p_index,
                                                    const Budget& budget) {
  GlobalMachine g = build_global(net, budget);
  auto any_edge = [](std::uint32_t) { return true; };

  // Case 1: a reachable stuck state.
  if (auto prefix = bfs_path(g, 0, [&](std::uint32_t s) { return g.is_stuck(s); }, any_edge)) {
    LassoWitness w;
    w.prefix = std::move(*prefix);
    w.pump_tuple = w.prefix.empty() ? g.tuple_vec(0) : w.prefix.back().tuple_after;
    return w;
  }

  // Case 2: a reachable cycle of non-P moves: find a state on such a cycle,
  // walk to it, then extract one round of the cycle.
  auto non_p = [&](std::uint32_t k) { return !g.process_moves(k, p_index); };
  Digraph d(g.num_states());
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    for (std::uint32_t k = g.edge_offsets[s]; k < g.edge_offsets[s + 1]; ++k) {
      if (non_p(k)) d.add_edge(s, g.target(k));
    }
  }
  auto scc = d.scc();
  for (std::uint32_t s = 0; s < g.num_states(); ++s) {
    for (std::uint32_t k = g.edge_offsets[s]; k < g.edge_offsets[s + 1]; ++k) {
      const std::uint32_t t = g.target(k);
      if (!non_p(k) || scc.component[s] != scc.component[t]) continue;
      // s -> t closes a non-P cycle; the cycle body is the non-P path from
      // t back to s, plus this edge.
      auto prefix = bfs_path(g, 0, [&](std::uint32_t v) { return v == s; }, any_edge);
      auto back = bfs_path(g, t, [&](std::uint32_t v) { return v == s; }, non_p);
      if (!prefix || !back) continue;  // unreachable witness candidate
      LassoWitness w;
      w.prefix = std::move(*prefix);
      w.cycle.push_back({g.mover(k), g.partner(k), g.tuple_vec(t)});
      w.cycle.insert(w.cycle.end(), back->begin(), back->end());
      w.pump_tuple = g.tuple_vec(s);
      return w;
    }
  }
  return std::nullopt;
}

std::string format_lasso(const Network& net, const LassoWitness& witness) {
  Witness prefix{witness.prefix, witness.pump_tuple};
  std::string out = format_witness(net, prefix);
  if (witness.is_starvation()) {
    out += "  cycle (repeats forever, distinguished process starved):\n";
    for (const auto& step : witness.cycle) {
      const Fsp& mover = net.process(step.mover);
      if (step.mover == step.partner) {
        out += "    " + mover.name() + ": tau\n";
      } else {
        out += "    " + mover.name() + " -- " + net.process(step.partner).name() + "\n";
      }
    }
  }
  return out;
}

std::string format_witness(const Network& net, const Witness& witness) {
  std::string out;
  std::vector<StateId> prev(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) prev[i] = net.process(i).start();
  for (const auto& step : witness.steps) {
    const Fsp& mover = net.process(step.mover);
    if (step.mover == step.partner) {
      out += "  " + mover.name() + ": " + mover.state_label(prev[step.mover]) + " --tau--> " +
             mover.state_label(step.tuple_after[step.mover]) + "\n";
    } else {
      // Recover the action from the mover's transition.
      ActionId action = kTau;
      for (const auto& t : mover.out(prev[step.mover])) {
        if (t.target == step.tuple_after[step.mover] && t.action != kTau) {
          action = t.action;
          break;
        }
      }
      const std::string label =
          action == kTau ? std::string("?") : net.alphabet()->name(action);
      out += "  " + mover.name() + " --" + label + "-- " + net.process(step.partner).name() +
             "\n";
    }
    prev = step.tuple_after;
  }
  out += "  final: ";
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (i) out += ", ";
    out += net.process(i).name() + "=" + net.process(i).state_label(witness.final_tuple[i]);
  }
  out += "\n";
  return out;
}

}  // namespace ccfsp
