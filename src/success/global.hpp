// The explicit global process G = P1 || P2 || ... || Pm, materialized as a
// reachable tuple graph. The paper calls analyzing G "standard, albeit
// inefficient"; here it serves exactly that role — the oracle baseline that
// the structured algorithms (Prop 1, Thm 3, Thm 4) are validated against
// and benchmarked around — so its construction is the hottest loop in the
// library and is stored flat: tuples packed into one block, edges in CSR
// form (see docs/perf.md for the memory layout and the determinism
// guarantees of the parallel build).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "network/network.hpp"
#include "util/budget.hpp"
#include "util/outcome.hpp"

namespace ccfsp {

struct GlobalMachine {
  /// Number of processes m; tuple g occupies tuple_data[g*width .. +width).
  std::uint32_t width = 0;

  /// Packed local-state tuples: tuple_data[g * width + i] = local state of
  /// process i in global state g. State 0 is the initial tuple.
  std::vector<StateId> tuple_data;

  struct Edge {
    std::uint32_t target;
    /// The handshake symbol, or kTau for an internal move. (The global
    /// process itself has only tau moves — this remembers what was hidden.)
    ActionId action;
    /// Index of a moving process, and of the second one for a handshake
    /// (== mover otherwise). Lets callers ask "did process i move here?".
    /// 16 bits: the edge array dominates the machine's footprint, and
    /// build_global rejects networks past 65535 processes anyway.
    std::uint16_t mover;
    std::uint16_t partner;

    bool operator==(const Edge&) const = default;
  };

  /// CSR edge storage: state g's out-edges are
  /// edge_data[edge_offsets[g] .. edge_offsets[g+1]).
  std::vector<Edge> edge_data;
  std::vector<std::uint32_t> edge_offsets;  // num_states() + 1 entries

  std::size_t num_states() const { return width == 0 ? 0 : tuple_data.size() / width; }
  std::size_t num_edges() const { return edge_data.size(); }

  std::span<const StateId> tuple(std::uint32_t g) const {
    return {tuple_data.data() + static_cast<std::size_t>(g) * width, width};
  }
  StateId local_state(std::uint32_t g, std::size_t i) const {
    return tuple_data[static_cast<std::size_t>(g) * width + i];
  }
  /// Owned copy of a tuple, for witness payloads and comparisons.
  std::vector<StateId> tuple_vec(std::uint32_t g) const {
    auto t = tuple(g);
    return {t.begin(), t.end()};
  }

  std::span<const Edge> out(std::uint32_t g) const {
    return {edge_data.data() + edge_offsets[g],
            static_cast<std::size_t>(edge_offsets[g + 1] - edge_offsets[g])};
  }

  bool is_stuck(std::uint32_t g) const { return edge_offsets[g] == edge_offsets[g + 1]; }
  bool process_moves(const Edge& e, std::size_t i) const {
    return e.mover == i || e.partner == i;
  }

  /// Retained footprint of the machine itself (excludes transient build
  /// structures), for the benches' bytes-per-state counter.
  std::size_t memory_bytes() const {
    return tuple_data.capacity() * sizeof(StateId) + edge_data.capacity() * sizeof(Edge) +
           edge_offsets.capacity() * sizeof(std::uint32_t);
  }

  /// Diagnostic only (not part of the machine's identity, excluded from the
  /// bit-identity comparisons): number of BFS levels the parallel build
  /// actually spawned worker threads for. Small frontiers are expanded
  /// inline on the build thread — see build_global.
  std::size_t levels_spawned = 0;
};

/// Default state cap for the explicit constructions (the historical
/// 1u << 22 guard, now expressed as a Budget).
inline constexpr std::size_t kDefaultMaxStates = 1u << 22;

/// The Definition 2 owner table: for every action of the alphabet, the pair
/// of process indices whose alphabets contain it ({UINT32_MAX, UINT32_MAX}
/// for actions no process uses). Throws std::invalid_argument — which
/// run_guarded classifies as kInvalidInput — when an action belongs to one
/// process only or to more than two, since the handshake partner would then
/// be ill-defined.
std::vector<std::pair<std::uint32_t, std::uint32_t>> action_owner_table(
    const std::vector<Fsp>& processes, std::size_t alphabet_size);

/// Build G by BFS from the initial tuple under `budget`: every interned
/// tuple is charged (states + estimated bytes), so an exponential network
/// stops at the wall with a BudgetExceeded instead of hanging or OOMing.
/// The machine is never returned truncated — it is complete or the call
/// throws.
///
/// `threads > 1` expands BFS levels in parallel with sharded interning and
/// canonically renumbers the result, so the returned machine — state
/// numbering, edge order, everything — is bit-identical to the threads == 1
/// build. Budget accounting is then applied at level granularity (same
/// totals, coarser trip points).
///
/// `threads` means *up to* that many: levels whose frontier is below
/// kParallelFrontierThreshold (~5k states per level) are expanded inline on
/// the build thread — spawn/join overhead dwarfs the work there, and small
/// corpus models never leave the sequential path at all. The result is
/// unaffected (the gate picks who runs the same expansion loop);
/// GlobalMachine::levels_spawned reports what actually ran in parallel.
GlobalMachine build_global(const Network& net, const Budget& budget, unsigned threads);

/// Frontier size below which a level is expanded inline even when
/// threads > 1.
inline constexpr std::size_t kParallelFrontierThreshold = 4096;
GlobalMachine build_global(const Network& net, const Budget& budget);

/// Legacy shape: a bare state cap. Equivalent to a states-only Budget.
GlobalMachine build_global(const Network& net, std::size_t max_states = kDefaultMaxStates);

/// The retained pre-flat reference implementation: std::map tuple interning
/// and per-state edge vectors, flattened into the CSR struct at the end. It
/// produces exactly the same machine as build_global — the property tests
/// assert that — and exists as the correctness oracle and the benchmark
/// baseline. Do not call it on anything large.
GlobalMachine build_global_reference(const Network& net, const Budget& budget);

/// Throw-free entry point: the machine, or a structured account of why not
/// (kBudgetExhausted carries the number of states explored before the wall,
/// kInvalidInput covers owner-table violations).
AnalysisOutcome<GlobalMachine> try_build_global(const Network& net, const Budget& budget,
                                                unsigned threads = 1);

}  // namespace ccfsp
