// The explicit global process G = P1 || P2 || ... || Pm, materialized as a
// reachable tuple graph. The paper calls analyzing G "standard, albeit
// inefficient"; here it serves exactly that role — the oracle baseline that
// the structured algorithms (Prop 1, Thm 3, Thm 4) are validated against
// and benchmarked around.
#pragma once

#include <cstdint>
#include <vector>

#include "network/network.hpp"
#include "util/budget.hpp"
#include "util/outcome.hpp"

namespace ccfsp {

struct GlobalMachine {
  /// tuples[g][i] = local state of process i in global state g; state 0 is
  /// the initial tuple.
  std::vector<std::vector<StateId>> tuples;

  struct Edge {
    std::uint32_t target;
    /// Index of a moving process, and of the second one for a handshake
    /// (== mover otherwise). Lets callers ask "did process i move here?".
    std::uint32_t mover;
    std::uint32_t partner;
    /// The handshake symbol, or kTau for an internal move. (The global
    /// process itself has only tau moves — this remembers what was hidden.)
    ActionId action;
  };
  std::vector<std::vector<Edge>> edges;

  std::size_t num_states() const { return tuples.size(); }
  bool is_stuck(std::uint32_t g) const { return edges[g].empty(); }
  bool process_moves(const Edge& e, std::size_t i) const {
    return e.mover == i || e.partner == i;
  }
};

/// Default state cap for the explicit constructions (the historical
/// 1u << 22 guard, now expressed as a Budget).
inline constexpr std::size_t kDefaultMaxStates = 1u << 22;

/// Build G by BFS from the initial tuple under `budget`: every interned
/// tuple is charged (states + estimated bytes), so an exponential network
/// stops at the wall with a BudgetExceeded instead of hanging or OOMing.
/// The machine is never returned truncated — it is complete or the call
/// throws.
GlobalMachine build_global(const Network& net, const Budget& budget);

/// Legacy shape: a bare state cap. Equivalent to a states-only Budget.
GlobalMachine build_global(const Network& net, std::size_t max_states = kDefaultMaxStates);

/// Throw-free entry point: the machine, or a structured account of why not
/// (kBudgetExhausted carries the number of states explored before the wall).
AnalysisOutcome<GlobalMachine> try_build_global(const Network& net, const Budget& budget);

}  // namespace ccfsp
