// The explicit global process G = P1 || P2 || ... || Pm, materialized as a
// reachable tuple graph. The paper calls analyzing G "standard, albeit
// inefficient"; here it serves exactly that role — the oracle baseline that
// the structured algorithms (Prop 1, Thm 3, Thm 4) are validated against
// and benchmarked around — so its construction is the hottest loop in the
// library and is stored flat: tuples bit-packed into one word block, edges
// in struct-of-arrays CSR columns (see docs/perf.md for the memory layout
// and the determinism guarantees of the parallel build).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "network/network.hpp"
#include "util/budget.hpp"
#include "util/outcome.hpp"

namespace ccfsp {

struct GlobalMachine {
  /// Number of processes m.
  std::uint32_t width = 0;
  /// Packed words per tuple: state g's tuple is tuple_words[g*words .. +words).
  std::uint32_t words = 0;

  /// Where process i's local state sits inside a packed tuple: coordinate i
  /// occupies bit_width(|Q_i|-1) bits of word `word`, never straddling a
  /// 32-bit boundary, so extraction is one load, shift, and mask.
  struct Field {
    std::uint32_t word, shift, mask;
  };
  std::vector<Field> fields;  // one per process

  /// Bit-packed local-state tuples, exactly as the build interner stored
  /// them — the machine keeps the packed form (m*4 bytes/state unpacked vs
  /// words*4 packed; phil:12 is 144 vs 12) and decodes on demand. State 0 is
  /// the initial tuple.
  std::vector<std::uint32_t> tuple_words;

  /// CSR edge storage, struct-of-arrays: edge k of state g (for k in
  /// edge_offsets[g] .. edge_offsets[g+1]) has target edge_target[k],
  /// handshake symbol edge_action[k] (kTau for an internal move — the global
  /// process itself has only tau moves; this remembers what was hidden), and
  /// its one or two moving processes packed into edge_pair[k] as
  /// (mover << 16) | partner (partner == mover for a tau move). Columns,
  /// not an array-of-structs: the reachability and SCC scans touch only the
  /// 4-byte target column, the decider filters only the pair column.
  std::vector<std::uint32_t> edge_target;
  std::vector<ActionId> edge_action;
  std::vector<std::uint32_t> edge_pair;
  std::vector<std::uint32_t> edge_offsets;  // num_states() + 1 entries

  std::size_t num_states() const {
    return edge_offsets.empty() ? 0 : edge_offsets.size() - 1;
  }
  std::size_t num_edges() const { return edge_target.size(); }

  /// Packed tuple of state g.
  std::span<const std::uint32_t> packed_tuple(std::uint32_t g) const {
    return {tuple_words.data() + static_cast<std::size_t>(g) * words, words};
  }
  StateId local_state(std::uint32_t g, std::size_t i) const {
    const Field& f = fields[i];
    return (tuple_words[static_cast<std::size_t>(g) * words + f.word] >> f.shift) & f.mask;
  }
  /// Decoded (unpacked) copy of a tuple, for witness payloads and comparisons.
  std::vector<StateId> tuple_vec(std::uint32_t g) const {
    std::vector<StateId> out(width);
    const std::uint32_t* p = tuple_words.data() + static_cast<std::size_t>(g) * words;
    for (std::size_t i = 0; i < width; ++i) {
      out[i] = (p[fields[i].word] >> fields[i].shift) & fields[i].mask;
    }
    return out;
  }

  /// The target column of state g's out-edges (the only column the graph
  /// scans need).
  std::span<const std::uint32_t> out_targets(std::uint32_t g) const {
    return {edge_target.data() + edge_offsets[g],
            static_cast<std::size_t>(edge_offsets[g + 1] - edge_offsets[g])};
  }

  std::uint32_t target(std::uint32_t k) const { return edge_target[k]; }
  ActionId action(std::uint32_t k) const { return edge_action[k]; }
  std::uint16_t mover(std::uint32_t k) const {
    return static_cast<std::uint16_t>(edge_pair[k] >> 16);
  }
  std::uint16_t partner(std::uint32_t k) const {
    return static_cast<std::uint16_t>(edge_pair[k] & 0xffffu);
  }

  bool is_stuck(std::uint32_t g) const { return edge_offsets[g] == edge_offsets[g + 1]; }
  /// Did process i move on edge k? (One load on the pair column.)
  bool process_moves(std::uint32_t k, std::size_t i) const {
    return mover(k) == i || partner(k) == i;
  }

  /// Retained footprint of the machine itself (excludes transient build
  /// structures), for the benches' bytes-per-state counter. Every builder
  /// finalizes its columns to exact capacity, so this is equal across the
  /// sequential, parallel, and reference builds (the csr.bytes counter
  /// asserts it).
  std::size_t memory_bytes() const {
    return fields.capacity() * sizeof(Field) + tuple_words.capacity() * sizeof(std::uint32_t) +
           edge_target.capacity() * sizeof(std::uint32_t) +
           edge_action.capacity() * sizeof(ActionId) +
           edge_pair.capacity() * sizeof(std::uint32_t) +
           edge_offsets.capacity() * sizeof(std::uint32_t);
  }

  /// Diagnostic only (not part of the machine's identity, excluded from the
  /// bit-identity comparisons): number of BFS levels the parallel build
  /// actually fanned out to the worker pool. Small frontiers are expanded
  /// inline on the build thread — see build_global.
  std::size_t levels_spawned = 0;
};

/// Default state cap for the explicit constructions (the historical
/// 1u << 22 guard, now expressed as a Budget).
inline constexpr std::size_t kDefaultMaxStates = 1u << 22;

/// The Definition 2 owner table: for every action of the alphabet, the pair
/// of process indices whose alphabets contain it ({UINT32_MAX, UINT32_MAX}
/// for actions no process uses). Throws std::invalid_argument — which
/// run_guarded classifies as kInvalidInput — when an action belongs to one
/// process only or to more than two, since the handshake partner would then
/// be ill-defined.
std::vector<std::pair<std::uint32_t, std::uint32_t>> action_owner_table(
    const std::vector<Fsp>& processes, std::size_t alphabet_size);

/// Build G by BFS from the initial tuple under `budget`: every interned
/// tuple is charged (states + estimated bytes), so an exponential network
/// stops at the wall with a BudgetExceeded instead of hanging or OOMing.
/// The machine is never returned truncated — it is complete or the call
/// throws.
///
/// `threads > 1` expands BFS levels on a persistent worker pool with sharded
/// interning (workers claim fixed-size frontier chunks, one synchronization
/// per level) and canonically renumbers the result, so the returned machine
/// — state numbering, edge order, everything — is bit-identical to the
/// threads == 1 build. Budget accounting is then applied at level
/// granularity (same totals, coarser trip points).
///
/// `threads` means *up to* that many: levels whose frontier is below
/// kParallelFrontierThreshold (~5k states per level) are expanded inline on
/// the build thread — the pool handoff dwarfs the work there, and small
/// corpus models never leave the sequential path at all. The result is
/// unaffected (the gate picks who runs the same expansion loop);
/// GlobalMachine::levels_spawned reports what actually ran in parallel.
GlobalMachine build_global(const Network& net, const Budget& budget, unsigned threads);

/// Frontier size below which a level is expanded inline even when
/// threads > 1.
inline constexpr std::size_t kParallelFrontierThreshold = 4096;
GlobalMachine build_global(const Network& net, const Budget& budget);

/// Legacy shape: a bare state cap. Equivalent to a states-only Budget.
GlobalMachine build_global(const Network& net, std::size_t max_states = kDefaultMaxStates);

/// Estimated retained bytes per interned tuple in the flat build (the unit
/// every flat builder charges against Budget). Exposed so a snapshot load
/// can charge exactly what a fresh build of the same machine would have —
/// the charge-equivalence contract the resume/load tests pin down.
std::size_t flat_build_bytes_per_state(std::size_t width);

/// A consistent mid-build image of the sequential flat BFS, taken at a
/// state boundary (the prefetch ring drained, state `cursor`-1 fully
/// expanded). Everything needed to continue: the arena's packed tuples in
/// id order (re-interning them in order reproduces ids AND hashes — the
/// Zobrist keys are a pure function of (process, state)), the edge columns,
/// and the CSR offsets so far. Deliberately all-POD vectors: the snapshot
/// layer serializes it without knowing anything about builder internals.
struct GlobalBuildProgress {
  std::uint32_t words = 0;   // packed words per tuple (layout guard)
  std::uint32_t cursor = 0;  // next state index to expand
  std::vector<std::uint32_t> tuple_words;  // interned tuples, id order
  std::vector<std::uint32_t> edge_target, edge_action, edge_pair;
  std::vector<std::uint32_t> edge_offsets;  // cursor + 1 entries
};

/// Periodic-checkpoint configuration for build_global_checkpointed.
struct CheckpointOptions {
  /// Take a checkpoint every this many expanded states (0 = never; the
  /// build still honours `resume`).
  std::size_t interval_states = 1 << 15;
  /// Called at each checkpoint with a consistent progress image. Writing it
  /// durably (or not) is the callback's business; a throw from here aborts
  /// the build (strong guarantee — nothing half-written escapes).
  std::function<void(const GlobalBuildProgress&)> on_checkpoint;
  /// Resume from this image instead of the initial tuple. The image must
  /// come from the same network (the snapshot layer fingerprints that);
  /// restored states are re-charged against the budget exactly like fresh
  /// interns, so a resumed run hits the same walls as an uninterrupted one.
  const GlobalBuildProgress* resume = nullptr;
};

/// build_global, sequential path, with periodic checkpoints and/or resume.
/// The returned machine is bit-identical to a plain build_global of the
/// same network whatever checkpoint/kill/resume schedule produced it (the
/// crash-recovery chaos driver sweeps exactly that property).
GlobalMachine build_global_checkpointed(const Network& net, const Budget& budget,
                                        const CheckpointOptions& ckpt);

/// The retained pre-flat reference implementation: std::map tuple interning
/// and per-state edge vectors, flattened into the CSR struct at the end. It
/// produces exactly the same machine as build_global — the property tests
/// assert that — and exists as the correctness oracle and the benchmark
/// baseline. Do not call it on anything large.
GlobalMachine build_global_reference(const Network& net, const Budget& budget);

/// Throw-free entry point: the machine, or a structured account of why not
/// (kBudgetExhausted carries the number of states explored before the wall,
/// kInvalidInput covers owner-table violations).
AnalysisOutcome<GlobalMachine> try_build_global(const Network& net, const Budget& budget,
                                                unsigned threads = 1);

}  // namespace ccfsp
