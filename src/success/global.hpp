// The explicit global process G = P1 || P2 || ... || Pm, materialized as a
// reachable tuple graph. The paper calls analyzing G "standard, albeit
// inefficient"; here it serves exactly that role — the oracle baseline that
// the structured algorithms (Prop 1, Thm 3, Thm 4) are validated against
// and benchmarked around.
#pragma once

#include <cstdint>
#include <vector>

#include "network/network.hpp"

namespace ccfsp {

struct GlobalMachine {
  /// tuples[g][i] = local state of process i in global state g; state 0 is
  /// the initial tuple.
  std::vector<std::vector<StateId>> tuples;

  struct Edge {
    std::uint32_t target;
    /// Index of a moving process, and of the second one for a handshake
    /// (== mover otherwise). Lets callers ask "did process i move here?".
    std::uint32_t mover;
    std::uint32_t partner;
    /// The handshake symbol, or kTau for an internal move. (The global
    /// process itself has only tau moves — this remembers what was hidden.)
    ActionId action;
  };
  std::vector<std::vector<Edge>> edges;

  std::size_t num_states() const { return tuples.size(); }
  bool is_stuck(std::uint32_t g) const { return edges[g].empty(); }
  bool process_moves(const Edge& e, std::size_t i) const {
    return e.mover == i || e.partner == i;
  }
};

/// Build G by BFS from the initial tuple. `max_states` guards against the
/// exponential blow-up this baseline exists to demonstrate.
GlobalMachine build_global(const Network& net, std::size_t max_states = 1u << 22);

}  // namespace ccfsp
