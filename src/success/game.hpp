// Game(P, Q) of Figure 4 — the partial-information game defining success in
// adversity. Player Q knows the global state and picks the next action;
// player P sees only the action sequence and its own state. Solved by a
// knowledge-set (belief) construction: positions are (P-state, set of
// Q-states consistent with the history), evaluated as a least fixpoint of
// the "Q can force a stop" attractor. Exponential in |Q| — exactly the
// upper-bound construction behind Theorem 2 membership and Proposition 2.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "fsp/fsp.hpp"
#include "network/network.hpp"
#include "util/budget.hpp"

namespace ccfsp {

struct GameStats {
  std::size_t positions = 0;  // knowledge-set positions explored
  std::size_t beliefs = 0;    // distinct belief sets
};

/// Acyclic rules: P wins iff every maximal play leaves it on a leaf.
/// Cyclic rules (`cyclic_goal`): P wins iff it can keep the game running
/// forever; any stop (including P reaching a leaf) is a win for Q.
/// Precondition: P has no tau moves (the Figure 4 assumption); throws
/// std::logic_error otherwise. Q may be any FSP (compose the context first;
/// use the cyclic composition so Q's tau-divergence becomes leaves).
/// Knowledge-set positions are charged against `budget` (the construction
/// is exponential in |Q| — Theorem 2's upper bound — so this is a main
/// blow-up path); the attractor fixpoint polls it every sweep.
bool success_adversity(const Fsp& p, const Fsp& q, const Budget& budget,
                       bool cyclic_goal = false, GameStats* stats = nullptr);
bool success_adversity(const Fsp& p, const Fsp& q, bool cyclic_goal = false,
                       std::size_t max_positions = 1u << 22, GameStats* stats = nullptr);

/// Convenience: builds Q = compose_context(net, p_index, cyclic_goal).
bool success_adversity_network(const Network& net, std::size_t p_index,
                               bool cyclic_goal = false, std::size_t max_positions = 1u << 22,
                               GameStats* stats = nullptr);

/// A winning strategy for player P, extracted from the solved game: a map
/// from (P-state, knowledge set) to a P-response per offerable action. The
/// object is self-contained (it owns the belief tables) and is driven by
/// feeding it the adversary's actions.
class Strategy {
 public:
  StateId current() const { return p_state_; }
  /// The adversary offers `a`; returns P's chosen successor state.
  /// Throws std::logic_error if `a` is not offerable here (i.e. the caller
  /// is not playing a legal adversary).
  StateId respond(ActionId a);
  void reset() {
    p_state_ = initial_p_;
    position_ = initial_position_;
  }

 private:
  friend std::optional<Strategy> winning_strategy(const Fsp&, const Fsp&, bool, std::size_t);
  struct Entry {
    std::map<ActionId, std::pair<StateId, std::uint32_t>> response;  // a -> (p', position')
  };
  std::vector<Entry> table_;
  StateId initial_p_ = 0;
  std::uint32_t initial_position_ = 0;
  StateId p_state_ = 0;
  std::uint32_t position_ = 0;
};

/// The strategy witnessing S_a, or nullopt if player Q wins. Same
/// preconditions as success_adversity.
std::optional<Strategy> winning_strategy(const Fsp& p, const Fsp& q, bool cyclic_goal = false,
                                         std::size_t max_positions = 1u << 22);

}  // namespace ccfsp
