#include "success/game.hpp"

#include <memory>
#include <optional>
#include <set>
#include <stdexcept>

#include "fsp/cache.hpp"
#include "success/context.hpp"

namespace ccfsp {

namespace {

using Belief = std::vector<StateId>;  // sorted, tau-closed set of Q states

struct Position {
  StateId p;
  std::uint32_t belief;
  auto operator<=>(const Position&) const = default;
};

/// The solved game: the knowledge-set position graph plus the least
/// fixpoint of "Q can force a stop that defeats P".
struct SolvedGame {
  std::vector<Position> positions;
  std::vector<Belief> beliefs;

  struct Expanded {
    bool q_can_stop = false;
    bool p_leaf = false;
    /// Per offerable action: the action id and P's response positions.
    std::vector<std::pair<ActionId, std::vector<std::uint32_t>>> action_groups;
  };
  std::vector<Expanded> expanded;
  std::vector<bool> bad;
  std::uint32_t initial = 0;

  bool p_wins() const { return !bad[initial]; }
};

SolvedGame solve(const Fsp& p, const Fsp& q, bool cyclic_goal, const Budget& budget) {
  if (p.has_tau_moves()) {
    throw std::logic_error("success_adversity: P must have no tau moves (Fig 4 assumption)");
  }
  SolvedGame g;
  // Q is rebuilt identically for every request on the same model, so a
  // long-lived server shares its analysis tables across requests; the
  // registry charges a warm hit exactly what the cold build costs
  // (charge-equivalence), keeping governed runs cache-oblivious.
  std::shared_ptr<const FspAnalysisCache> shared_qc;
  std::optional<FspAnalysisCache> local_qc;
  if (SharedCacheRegistry* registry = SharedCacheRegistry::current()) {
    shared_qc = registry->fsp_cache(q, &budget);
  } else {
    local_qc.emplace(q, &budget);
  }
  const FspAnalysisCache& qc = shared_qc ? *shared_qc : *local_qc;

  std::map<Belief, std::uint32_t> belief_ids;
  auto intern_belief = [&](Belief b) {
    auto [it, fresh] = belief_ids.try_emplace(b, static_cast<std::uint32_t>(g.beliefs.size()));
    if (fresh) {
      budget.charge(0, b.size() * sizeof(StateId) + 64, "success_adversity");
      g.beliefs.push_back(std::move(b));
    }
    return it->second;
  };

  std::map<Position, std::uint32_t> pos_ids;
  auto intern_pos = [&](Position pos) {
    auto [it, fresh] =
        pos_ids.try_emplace(pos, static_cast<std::uint32_t>(g.positions.size()));
    if (fresh) {
      budget.charge(1, sizeof(Position) + 64, "success_adversity");
      g.positions.push_back(pos);
    }
    return it->second;
  };

  g.initial = intern_pos({p.start(), intern_belief(q.tau_closure(q.start()))});

  for (std::uint32_t i = 0; i < g.positions.size(); ++i) {
    // Expanding one position does belief-sized set work per action and may
    // intern nothing fresh, so charge()'s stride can starve the clock here;
    // tick() polls it immediately.
    budget.tick("success_adversity");
    Position pos = g.positions[i];
    // Copy: intern_belief below may reallocate the beliefs vector.
    Belief belief = g.beliefs[pos.belief];
    SolvedGame::Expanded ex;
    ex.p_leaf = p.is_leaf(pos.p);

    ActionSet p_out = p.out_actions(pos.p);
    for (StateId qs : belief) {
      if (!qc.ready_actions(qs).intersects(p_out)) {
        ex.q_can_stop = true;
        break;
      }
    }

    std::set<ActionId> seen_actions;
    for (const auto& t : p.out(pos.p)) {
      if (!seen_actions.insert(t.action).second) continue;

      // Belief update: Q-states after q ==a==> (tau-closed).
      std::set<StateId> next;
      for (StateId qs : belief) {
        for (StateId r : qc.arrow_successors(qs, t.action)) next.insert(r);
      }
      if (next.empty()) continue;  // Q can never offer this action here
      std::uint32_t nb = intern_belief(Belief(next.begin(), next.end()));

      std::vector<std::uint32_t> responses;
      for (const auto& t2 : p.out(pos.p)) {
        if (t2.action == t.action) responses.push_back(intern_pos({t2.target, nb}));
      }
      ex.action_groups.emplace_back(t.action, std::move(responses));
    }
    g.expanded.push_back(std::move(ex));
  }

  // Least fixpoint of "bad" (Q can force a stop that defeats P).
  //   acyclic goal: bad if (Q can stop and P off-leaf) or some offerable
  //                 action has only bad responses;
  //   cyclic goal:  bad if P is on a leaf, or Q can stop, or some offerable
  //                 action has only bad responses.
  g.bad.assign(g.positions.size(), false);
  bool changed = true;
  while (changed) {
    budget.tick("success_adversity");
    changed = false;
    for (std::uint32_t i = 0; i < g.positions.size(); ++i) {
      if (g.bad[i]) continue;
      const auto& ex = g.expanded[i];
      bool b = cyclic_goal ? (ex.p_leaf || ex.q_can_stop) : (ex.q_can_stop && !ex.p_leaf);
      if (!b) {
        for (const auto& [action, group] : ex.action_groups) {
          bool all_bad = true;
          for (std::uint32_t r : group) {
            if (!g.bad[r]) {
              all_bad = false;
              break;
            }
          }
          if (all_bad) {
            b = true;
            break;
          }
        }
      }
      if (b) {
        g.bad[i] = true;
        changed = true;
      }
    }
  }
  return g;
}

}  // namespace

bool success_adversity(const Fsp& p, const Fsp& q, const Budget& budget, bool cyclic_goal,
                       GameStats* stats) {
  SolvedGame g = solve(p, q, cyclic_goal, budget);
  if (stats) {
    stats->positions = g.positions.size();
    stats->beliefs = g.beliefs.size();
  }
  return g.p_wins();
}

bool success_adversity(const Fsp& p, const Fsp& q, bool cyclic_goal,
                       std::size_t max_positions, GameStats* stats) {
  return success_adversity(p, q, Budget::with_states(max_positions), cyclic_goal, stats);
}

bool success_adversity_network(const Network& net, std::size_t p_index, bool cyclic_goal,
                               std::size_t max_positions, GameStats* stats) {
  Fsp q = compose_context(net, p_index, cyclic_goal);
  return success_adversity(net.process(p_index), q, cyclic_goal, max_positions, stats);
}

StateId Strategy::respond(ActionId a) {
  const Entry& entry = table_[position_];
  auto it = entry.response.find(a);
  if (it == entry.response.end()) {
    throw std::logic_error("Strategy::respond: action not offerable here");
  }
  p_state_ = it->second.first;
  position_ = it->second.second;
  return p_state_;
}

std::optional<Strategy> winning_strategy(const Fsp& p, const Fsp& q, bool cyclic_goal,
                                         std::size_t max_positions) {
  SolvedGame g = solve(p, q, cyclic_goal, Budget::with_states(max_positions));
  if (!g.p_wins()) return std::nullopt;

  Strategy s;
  s.table_.resize(g.positions.size());
  for (std::uint32_t i = 0; i < g.positions.size(); ++i) {
    if (g.bad[i]) continue;  // never entered under the strategy
    for (const auto& [action, group] : g.expanded[i].action_groups) {
      // P wins from i, so every offerable action has a good response.
      for (std::uint32_t r : group) {
        if (!g.bad[r]) {
          s.table_[i].response.emplace(action, std::make_pair(g.positions[r].p, r));
          break;
        }
      }
    }
  }
  s.initial_p_ = p.start();
  s.initial_position_ = g.initial;
  s.reset();
  return s;
}

}  // namespace ccfsp
