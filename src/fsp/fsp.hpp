// The Finite State Process of Definition 1: states, a start state, an
// action alphabet Sigma, and a transition relation over Sigma + {tau}.
// Every state is reachable from the start state (enforced by validate()).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fsp/alphabet.hpp"
#include "util/graph.hpp"

namespace ccfsp {

using StateId = std::uint32_t;

struct Transition {
  ActionId action;  // may be kTau
  StateId target;

  bool operator==(const Transition&) const = default;
};

/// Atom identifying one state of one *original* process inside a composite
/// state tuple: (process uid << 32) | state id. Keeping composite states as
/// sorted atom vectors realizes the paper's convention that tuple order is
/// irrelevant, which is what makes || associative and commutative (Lemma 1).
using StateAtom = std::uint64_t;

inline StateAtom make_atom(std::uint32_t process_uid, StateId s) {
  return (static_cast<StateAtom>(process_uid) << 32) | s;
}

/// Lazily computes a state's display label on first request. Products of
/// large networks have millions of states whose labels ("(a & b)" strings
/// that grow with fold depth) are only ever read for witnesses and dot
/// dumps, so composites defer label construction instead of materializing
/// O(states) strings per fold level.
using LabelFn = std::function<std::string(StateId)>;

class Fsp {
 public:
  Fsp(AlphabetPtr alphabet, std::string name);

  // ---- construction ----
  StateId add_state(std::string label = "");
  void add_transition(StateId from, ActionId action, StateId to);
  void set_start(StateId s) { start_ = s; }
  /// Add an action to Sigma even if no transition uses it (a process may
  /// listen on symbols it never gets to use in some branch).
  void declare_action(ActionId a);

  // ---- basic accessors ----
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  const AlphabetPtr& alphabet() const { return alphabet_; }
  StateId start() const { return start_; }
  std::size_t num_states() const { return out_.size(); }
  std::size_t num_transitions() const;
  const std::vector<Transition>& out(StateId s) const { return out_[s]; }
  /// The state's label, materializing it from the provider on first access.
  const std::string& state_label(StateId s) const;
  std::uint32_t uid() const { return uid_; }

  // ---- lazy labels ----
  /// Install a provider consulted for states whose label is still empty.
  /// add_state() then stops pre-filling numeric default labels.
  void set_label_provider(LabelFn fn) { label_fn_ = std::move(fn); }
  bool has_label_provider() const { return static_cast<bool>(label_fn_); }
  /// A self-contained closure answering state_label() for this process's
  /// current states. It captures a *copy* of the materialized labels plus
  /// the provider — not the Fsp — so composites built from it do not keep
  /// their fold intermediates (transitions, atoms) alive.
  LabelFn label_snapshot() const;

  /// Sorted atoms forming this state (a single atom for original processes,
  /// a flattened tuple for composites).
  const std::vector<StateAtom>& atoms(StateId s) const { return atoms_[s]; }
  void set_atoms(StateId s, std::vector<StateAtom> a) { atoms_[s] = std::move(a); }

  // ---- Sigma ----
  /// Declared + used observable actions, sorted ascending.
  const std::vector<ActionId>& sigma() const;
  /// Same as a bitset over the *current* alphabet size. Call only after the
  /// shared Alphabet is fully populated (analysis phase).
  ActionSet sigma_set() const;

  // ---- per-state structure ----
  bool has_tau_out(StateId s) const;
  bool is_stable(StateId s) const { return !has_tau_out(s); }
  /// True iff the state has no outgoing transitions at all (a "leaf").
  bool is_leaf(StateId s) const { return out_[s].empty(); }
  /// Observable out-action set of a single state (not tau-closed).
  ActionSet out_actions(StateId s) const;
  /// Ready set: observable actions a with s ==a==> (i.e. reachable through
  /// leading tau moves). Used by game solvers.
  ActionSet ready_actions(StateId s) const;
  /// States reachable from s via tau moves only (including s).
  std::vector<StateId> tau_closure(StateId s) const;
  /// Successor states under s ==a==> t (tau* a tau*).
  std::vector<StateId> arrow_successors(StateId s, ActionId a) const;

  // ---- whole-process structure (Section 2.1 taxonomy) ----
  Digraph digraph() const;
  bool is_acyclic() const;  // DAG (single root = start, by reachability)
  bool is_tree() const;     // every non-start state has exactly one parent
  bool is_linear() const;   // a simple path
  bool has_tau_moves() const;
  bool has_leaves() const;
  /// All leaf states.
  std::vector<StateId> leaves() const;

  /// Throws std::logic_error if some state is unreachable from start or a
  /// transition carries an action not in Sigma's universe.
  void validate() const;

  /// Copy restricted to states reachable from start (relabels state ids,
  /// preserves labels/atoms). The paper's processes are reachable by
  /// definition; products must be trimmed to get P1 (sqcap) P2.
  Fsp trimmed() const;

  /// Longest path length (#transitions) from start; requires acyclic.
  std::size_t depth() const;

  /// GraphViz rendering (actions by name, tau as the Greek letter).
  std::string to_dot() const;

 private:
  static std::uint32_t next_uid();

  AlphabetPtr alphabet_;
  std::string name_;
  std::uint32_t uid_;
  StateId start_ = 0;
  std::vector<std::vector<Transition>> out_;
  mutable std::vector<std::string> labels_;
  LabelFn label_fn_;
  std::vector<std::vector<StateAtom>> atoms_;
  std::vector<ActionId> declared_;

  mutable std::vector<ActionId> sigma_cache_;
  mutable bool sigma_dirty_ = true;
};

}  // namespace ccfsp
