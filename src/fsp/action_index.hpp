// Per-process action-indexed successor lookup. The handshake inner loop of
// the global-machine build asks, for every transition of the moving process,
// "which targets can the partner reach on this symbol from its current
// state?". Scanning the partner's out-list per query makes that loop
// O(out-degree^2) per tuple; this index groups each state's transitions by
// action once (a stable grouping, so relative order within an action is the
// declaration order the reference build observes) and answers the query with
// a binary search plus a flat span.
#pragma once

#include <span>
#include <vector>

#include "fsp/fsp.hpp"

namespace ccfsp {

class ActionIndex {
 public:
  /// One contiguous run of same-action targets out of one state; `begin` /
  /// `end` index into the flat target array.
  struct Group {
    ActionId action;
    std::uint32_t begin;
    std::uint32_t end;
  };

  explicit ActionIndex(const Fsp& f);

  /// Targets of s -a-> t transitions, in declaration order. Empty span when
  /// the state has no transition on `a`. Works for kTau as well.
  std::span<const StateId> targets(StateId s, ActionId a) const;

  /// O(1) variant for observable actions (a != kTau): a dense
  /// (state x used-action) cell table replaces the binary search. This is
  /// the handshake inner loop's lookup.
  std::span<const StateId> targets_fast(StateId s, ActionId a) const {
    const std::uint32_t slot = a < slot_of_.size() ? slot_of_[a] : UINT32_MAX;
    if (slot == UINT32_MAX) return {};
    const auto& cell = cells_[static_cast<std::size_t>(s) * num_slots_ + slot];
    return {targets_.data() + cell.first, static_cast<std::size_t>(cell.second - cell.first)};
  }

  /// The (action, target-run) groups of state s, actions ascending with kTau
  /// (the all-ones id) last.
  std::span<const Group> groups(StateId s) const;

  /// Raw access to the dense cell table, for callers that resolve the action
  /// slot once (the flat global-machine build precomputes it per transition):
  /// cell [s * num_slots() + slot] is the (begin, end) run into
  /// targets_data(). slot_of() is UINT32_MAX for actions this process never
  /// fires.
  std::uint32_t slot_of(ActionId a) const {
    return a < slot_of_.size() ? slot_of_[a] : UINT32_MAX;
  }
  std::size_t num_slots() const { return num_slots_; }
  const std::pair<std::uint32_t, std::uint32_t>* cells_data() const { return cells_.data(); }
  const StateId* targets_data() const { return targets_.data(); }

 private:
  std::vector<Group> groups_;
  std::vector<std::uint32_t> group_off_;  // per state, into groups_
  std::vector<StateId> targets_;
  std::vector<std::uint32_t> slot_of_;    // action -> dense slot, UINT32_MAX if unused
  std::size_t num_slots_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cells_;  // state x slot -> run
};

}  // namespace ccfsp
