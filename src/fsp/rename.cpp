#include "fsp/rename.hpp"

#include <set>
#include <stdexcept>

namespace ccfsp {

Fsp rename_actions(const Fsp& f, const std::map<ActionId, ActionId>& mapping,
                   const std::string& new_name) {
  auto apply = [&](ActionId a) {
    if (a == kTau) return kTau;
    auto it = mapping.find(a);
    return it == mapping.end() ? a : it->second;
  };
  for (const auto& [from, to] : mapping) {
    if (from == kTau || to == kTau) {
      throw std::invalid_argument("rename_actions: tau cannot be renamed");
    }
  }
  // Injectivity on Sigma(f): distinct source actions must land apart.
  std::set<ActionId> images;
  for (ActionId a : f.sigma()) {
    if (!images.insert(apply(a)).second) {
      throw std::invalid_argument("rename_actions: mapping glues two actions of Sigma");
    }
  }

  Fsp out(f.alphabet(), new_name);
  for (StateId s = 0; s < f.num_states(); ++s) out.add_state(f.state_label(s));
  for (StateId s = 0; s < f.num_states(); ++s) {
    for (const auto& t : f.out(s)) {
      out.add_transition(s, apply(t.action), t.target);
    }
  }
  out.set_start(f.start());

  ActionSet used(f.alphabet()->size());
  for (StateId s = 0; s < out.num_states(); ++s) used |= out.out_actions(s);
  for (ActionId a : f.sigma()) {
    ActionId img = apply(a);
    if (!used.test(img)) out.declare_action(img);
  }
  return out;
}

Fsp rename_actions(const Fsp& f,
                   const std::vector<std::pair<std::string, std::string>>& pairs,
                   const std::string& new_name) {
  std::map<ActionId, ActionId> mapping;
  for (const auto& [from, to] : pairs) {
    auto from_id = f.alphabet()->find(from);
    if (!from_id) {
      throw std::invalid_argument("rename_actions: unknown action '" + from + "'");
    }
    mapping[*from_id] = f.alphabet()->intern(to);
  }
  return rename_actions(f, mapping, new_name);
}

}  // namespace ccfsp
