#include "fsp/parse.hpp"

#include <cctype>
#include <stdexcept>

#include "fsp/builder.hpp"
#include "util/failpoint.hpp"

namespace ccfsp {

ParseError::ParseError(std::size_t line, std::size_t column, const std::string& message,
                       std::string token)
    : std::runtime_error("parse error at line " + std::to_string(line) + ", column " +
                         std::to_string(column) + ": " + message +
                         (token.empty() ? std::string() : " (got '" + token + "')")),
      line_(line),
      column_(column),
      message_(message),
      token_(std::move(token)) {}

namespace {

struct Token {
  enum Kind { kIdent, kLBrace, kRBrace, kSemi, kArrow, kEnd } kind;
  std::string text;
  std::size_t line;
  std::size_t column;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Token next() {
    skip_ws();
    std::size_t col = column();
    if (pos_ >= src_.size()) return {Token::kEnd, "", line_, col};
    char c = src_[pos_];
    if (c == '{') {
      ++pos_;
      return {Token::kLBrace, "{", line_, col};
    }
    if (c == '}') {
      ++pos_;
      return {Token::kRBrace, "}", line_, col};
    }
    if (c == ';') {
      ++pos_;
      return {Token::kSemi, ";", line_, col};
    }
    if (c == '-') {
      // -<action>->  : lex the whole arrow as one token carrying the action.
      std::size_t start = pos_ + 1;
      std::size_t p = start;
      while (p < src_.size() && src_[p] != '-' && src_[p] != '\n') ++p;
      if (p + 1 >= src_.size() || src_[p] != '-' || src_[p + 1] != '>') {
        fail("malformed arrow, expected -action->");
      }
      std::string action(src_.substr(start, p - start));
      if (action.empty()) fail("arrow with empty action");
      pos_ = p + 2;
      return {Token::kArrow, action, line_, col};
    }
    if (is_ident_char(c)) {
      std::size_t start = pos_;
      while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
      return {Token::kIdent, std::string(src_.substr(start, pos_ - start)), line_, col};
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  [[noreturn]] void fail(const std::string& msg) const {
    std::string token = pos_ < src_.size() ? std::string(1, src_[pos_]) : std::string();
    throw ParseError(line_, column(), msg, std::move(token));
  }

 private:
  static bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '\'';
  }

  std::size_t column() const { return pos_ - line_start_ + 1; }

  void skip_ws() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

class Parser {
 public:
  Parser(std::string_view src, AlphabetPtr alphabet)
      : lexer_(src), alphabet_(std::move(alphabet)) {
    advance();
  }

  bool at_end() const { return tok_.kind == Token::kEnd; }

  Fsp parse_process() {
    expect_ident("process");
    if (tok_.kind != Token::kIdent) fail("expected process name");
    failpoint::hit("parse.process");
    FspBuilder b(alphabet_, tok_.text);
    advance();
    expect(Token::kLBrace, "{");
    while (tok_.kind != Token::kRBrace) {
      if (tok_.kind != Token::kIdent) fail("expected statement");
      if (tok_.text == "start") {
        advance();
        if (tok_.kind != Token::kIdent) fail("expected state after 'start'");
        guarded([&] { b.start(tok_.text); });
        advance();
        expect(Token::kSemi, ";");
      } else if (tok_.text == "alphabet") {
        advance();
        while (tok_.kind == Token::kIdent) {
          guarded([&] { b.action(tok_.text); });
          advance();
        }
        expect(Token::kSemi, ";");
      } else {
        std::string from = tok_.text;
        advance();
        if (tok_.kind != Token::kArrow) fail("expected -action-> after state");
        std::string action = tok_.text;
        advance();
        if (tok_.kind != Token::kIdent) fail("expected target state");
        std::string to = tok_.text;
        advance();
        guarded([&] { b.trans(from, action, to); });
        expect(Token::kSemi, ";");
      }
    }
    std::size_t close_line = tok_.line;
    std::size_t close_column = tok_.column;
    advance();  // consume '}'
    // Builder rejections at finalization (e.g. unreachable states) become
    // ParseErrors anchored at the closing brace.
    try {
      return b.build();
    } catch (const std::exception& e) {
      throw ParseError(close_line, close_column, e.what());
    }
  }

  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError(tok_.line, tok_.column, msg, tok_.text);
  }

 private:
  void advance() { tok_ = lexer_.next(); }

  void expect(Token::Kind k, const char* what) {
    if (tok_.kind != k) fail(std::string("expected '") + what + "'");
    advance();
  }

  void expect_ident(const std::string& word) {
    if (tok_.kind != Token::kIdent || tok_.text != word) fail("expected '" + word + "'");
    advance();
  }

  /// Run a builder call; semantic rejections (invalid_argument, logic_error)
  /// become ParseErrors at the current token.
  template <typename F>
  void guarded(F&& f) {
    try {
      f();
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception& e) {
      fail(e.what());
    }
  }

  Lexer lexer_;
  AlphabetPtr alphabet_;
  Token tok_{Token::kEnd, "", 0, 0};
};

}  // namespace

Fsp parse_fsp(std::string_view text, const AlphabetPtr& alphabet) {
  Parser p(text, alphabet);
  Fsp f = p.parse_process();
  if (!p.at_end()) p.fail("trailing input after process block");
  return f;
}

std::vector<Fsp> parse_processes(std::string_view text, const AlphabetPtr& alphabet) {
  Parser p(text, alphabet);
  std::vector<Fsp> out;
  while (!p.at_end()) out.push_back(p.parse_process());
  return out;
}

std::string to_dsl(const Fsp& fsp) {
  std::string s = "process " + fsp.name() + " {\n";
  s += "  start " + fsp.state_label(fsp.start()) + ";\n";
  for (StateId q = 0; q < fsp.num_states(); ++q) {
    for (const auto& t : fsp.out(q)) {
      std::string action = t.action == kTau ? "tau" : fsp.alphabet()->name(t.action);
      s += "  " + fsp.state_label(q) + " -" + action + "-> " + fsp.state_label(t.target) + ";\n";
    }
  }
  // Emit declared-but-unused actions so Sigma round-trips.
  ActionSet used(fsp.alphabet()->size());
  for (StateId q = 0; q < fsp.num_states(); ++q) used |= fsp.out_actions(q);
  std::string extra;
  for (ActionId a : fsp.sigma()) {
    if (!used.test(a)) extra += " " + fsp.alphabet()->name(a);
  }
  if (!extra.empty()) s += "  alphabet" + extra + ";\n";
  s += "}\n";
  return s;
}

std::string to_dsl(const std::vector<Fsp>& processes) {
  std::string s;
  for (const Fsp& p : processes) {
    if (!s.empty()) s += "\n";
    s += to_dsl(p);
  }
  return s;
}

}  // namespace ccfsp
