#include "fsp/action_index.hpp"

#include <algorithm>

namespace ccfsp {

ActionIndex::ActionIndex(const Fsp& f) {
  const std::size_t n = f.num_states();
  group_off_.reserve(n + 1);
  group_off_.push_back(0);
  targets_.reserve(f.num_transitions());

  std::vector<std::uint32_t> order;
  for (StateId s = 0; s < n; ++s) {
    const auto& out = f.out(s);
    order.resize(out.size());
    for (std::uint32_t i = 0; i < out.size(); ++i) order[i] = i;
    // Stable: same-action transitions keep their declaration order, which is
    // the order the unindexed linear scan yields them in.
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
      return out[x].action < out[y].action;
    });
    for (std::uint32_t i = 0; i < order.size();) {
      const ActionId a = out[order[i]].action;
      const std::uint32_t begin = static_cast<std::uint32_t>(targets_.size());
      for (; i < order.size() && out[order[i]].action == a; ++i) {
        targets_.push_back(out[order[i]].target);
      }
      groups_.push_back({a, begin, static_cast<std::uint32_t>(targets_.size())});
    }
    group_off_.push_back(static_cast<std::uint32_t>(groups_.size()));
  }

  // Dense cell table for targets_fast: one slot per observable action that
  // actually labels a transition, first-seen order.
  slot_of_.assign(f.alphabet()->size(), UINT32_MAX);
  for (const Group& g : groups_) {
    if (g.action != kTau && slot_of_[g.action] == UINT32_MAX) {
      slot_of_[g.action] = static_cast<std::uint32_t>(num_slots_++);
    }
  }
  cells_.assign(n * num_slots_, {0, 0});
  for (StateId s = 0; s < n; ++s) {
    for (std::uint32_t gi = group_off_[s]; gi < group_off_[s + 1]; ++gi) {
      const Group& g = groups_[gi];
      if (g.action == kTau) continue;
      cells_[static_cast<std::size_t>(s) * num_slots_ + slot_of_[g.action]] = {g.begin, g.end};
    }
  }
}

std::span<const StateId> ActionIndex::targets(StateId s, ActionId a) const {
  const Group* first = groups_.data() + group_off_[s];
  const Group* last = groups_.data() + group_off_[s + 1];
  const Group* it = std::lower_bound(first, last, a, [](const Group& g, ActionId key) {
    return g.action < key;
  });
  if (it == last || it->action != a) return {};
  return {targets_.data() + it->begin, static_cast<std::size_t>(it->end - it->begin)};
}

std::span<const ActionIndex::Group> ActionIndex::groups(StateId s) const {
  return {groups_.data() + group_off_[s],
          static_cast<std::size_t>(group_off_[s + 1] - group_off_[s])};
}

}  // namespace ccfsp
