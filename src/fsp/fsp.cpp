#include "fsp/fsp.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>

namespace ccfsp {

std::uint32_t Fsp::next_uid() {
  static std::atomic<std::uint32_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Fsp::Fsp(AlphabetPtr alphabet, std::string name)
    : alphabet_(std::move(alphabet)), name_(std::move(name)), uid_(next_uid()) {
  if (!alphabet_) throw std::invalid_argument("Fsp: null alphabet");
}

StateId Fsp::add_state(std::string label) {
  StateId s = static_cast<StateId>(out_.size());
  out_.emplace_back();
  if (label.empty() && !label_fn_) label = std::to_string(s);
  labels_.push_back(std::move(label));
  atoms_.push_back({make_atom(uid_, s)});
  return s;
}

const std::string& Fsp::state_label(StateId s) const {
  std::string& slot = labels_[s];
  if (slot.empty()) {
    if (label_fn_) slot = label_fn_(s);
    if (slot.empty()) slot = std::to_string(s);
  }
  return slot;
}

LabelFn Fsp::label_snapshot() const {
  return [labels = labels_, fn = label_fn_](StateId s) -> std::string {
    if (s < labels.size() && !labels[s].empty()) return labels[s];
    if (fn) {
      std::string v = fn(s);
      if (!v.empty()) return v;
    }
    return std::to_string(s);
  };
}

void Fsp::add_transition(StateId from, ActionId action, StateId to) {
  if (from >= num_states() || to >= num_states()) {
    throw std::out_of_range("Fsp::add_transition: bad state id");
  }
  out_[from].push_back({action, to});
  sigma_dirty_ = true;
}

void Fsp::declare_action(ActionId a) {
  if (a == kTau) throw std::invalid_argument("Fsp::declare_action: tau is not in Sigma");
  declared_.push_back(a);
  sigma_dirty_ = true;
}

std::size_t Fsp::num_transitions() const {
  std::size_t n = 0;
  for (const auto& ts : out_) n += ts.size();
  return n;
}

const std::vector<ActionId>& Fsp::sigma() const {
  if (sigma_dirty_) {
    std::set<ActionId> acts(declared_.begin(), declared_.end());
    for (const auto& ts : out_) {
      for (const auto& t : ts) {
        if (t.action != kTau) acts.insert(t.action);
      }
    }
    sigma_cache_.assign(acts.begin(), acts.end());
    sigma_dirty_ = false;
  }
  return sigma_cache_;
}

ActionSet Fsp::sigma_set() const {
  ActionSet s(alphabet_->size());
  for (ActionId a : sigma()) s.set(a);
  return s;
}

bool Fsp::has_tau_out(StateId s) const {
  for (const auto& t : out_[s]) {
    if (t.action == kTau) return true;
  }
  return false;
}

ActionSet Fsp::out_actions(StateId s) const {
  ActionSet set(alphabet_->size());
  for (const auto& t : out_[s]) {
    if (t.action != kTau) set.set(t.action);
  }
  return set;
}

ActionSet Fsp::ready_actions(StateId s) const {
  ActionSet set(alphabet_->size());
  for (StateId q : tau_closure(s)) set |= out_actions(q);
  return set;
}

std::vector<StateId> Fsp::tau_closure(StateId s) const {
  std::vector<bool> seen(num_states(), false);
  std::vector<StateId> stack{s};
  std::vector<StateId> closure;
  seen[s] = true;
  while (!stack.empty()) {
    StateId q = stack.back();
    stack.pop_back();
    closure.push_back(q);
    for (const auto& t : out_[q]) {
      if (t.action == kTau && !seen[t.target]) {
        seen[t.target] = true;
        stack.push_back(t.target);
      }
    }
  }
  std::sort(closure.begin(), closure.end());
  return closure;
}

std::vector<StateId> Fsp::arrow_successors(StateId s, ActionId a) const {
  std::set<StateId> result;
  for (StateId q : tau_closure(s)) {
    for (const auto& t : out_[q]) {
      if (t.action == a) {
        for (StateId r : tau_closure(t.target)) result.insert(r);
      }
    }
  }
  return {result.begin(), result.end()};
}

Digraph Fsp::digraph() const {
  Digraph g(num_states());
  for (StateId s = 0; s < num_states(); ++s) {
    for (const auto& t : out_[s]) g.add_edge(s, t.target);
  }
  return g;
}

bool Fsp::is_acyclic() const { return !digraph().has_cycle(); }

bool Fsp::is_tree() const {
  std::vector<std::size_t> indeg(num_states(), 0);
  for (StateId s = 0; s < num_states(); ++s) {
    for (const auto& t : out_[s]) ++indeg[t.target];
  }
  if (indeg[start_] != 0) return false;
  for (StateId s = 0; s < num_states(); ++s) {
    if (s != start_ && indeg[s] != 1) return false;
  }
  // In-degree constraints plus reachability from the root imply acyclicity,
  // but only if reachability holds; validate() guarantees it, re-check here
  // so is_tree() is safe on unvalidated processes.
  return is_acyclic();
}

bool Fsp::is_linear() const {
  if (!is_tree()) return false;
  for (StateId s = 0; s < num_states(); ++s) {
    if (out_[s].size() > 1) return false;
  }
  return true;
}

bool Fsp::has_tau_moves() const {
  for (StateId s = 0; s < num_states(); ++s) {
    if (has_tau_out(s)) return true;
  }
  return false;
}

bool Fsp::has_leaves() const {
  for (StateId s = 0; s < num_states(); ++s) {
    if (is_leaf(s)) return true;
  }
  return false;
}

std::vector<StateId> Fsp::leaves() const {
  std::vector<StateId> ls;
  for (StateId s = 0; s < num_states(); ++s) {
    if (is_leaf(s)) ls.push_back(s);
  }
  return ls;
}

void Fsp::validate() const {
  if (num_states() == 0) throw std::logic_error("Fsp '" + name_ + "': no states");
  auto reach = digraph().reachable_from(start_);
  for (StateId s = 0; s < num_states(); ++s) {
    if (!reach[s]) {
      throw std::logic_error("Fsp '" + name_ + "': state " + state_label(s) +
                             " unreachable from start");
    }
  }
  for (StateId s = 0; s < num_states(); ++s) {
    for (const auto& t : out_[s]) {
      if (t.action != kTau && t.action >= alphabet_->size()) {
        throw std::logic_error("Fsp '" + name_ + "': transition with unknown action id");
      }
    }
  }
}

Fsp Fsp::trimmed() const {
  auto reach = digraph().reachable_from(start_);
  std::vector<StateId> remap(num_states(), 0);
  Fsp out(alphabet_, name_);
  if (label_fn_) {
    // Keep labels lazy across the trim: route the copy's labels back to the
    // original state ids through the inverse map (filled below as states are
    // added, so it must live behind a shared_ptr the provider can hold).
    auto inverse = std::make_shared<std::vector<StateId>>();
    out.set_label_provider([snap = label_snapshot(), inverse](StateId s) {
      return s < inverse->size() ? snap((*inverse)[s]) : std::string();
    });
    for (StateId s = 0; s < num_states(); ++s) {
      if (reach[s]) {
        remap[s] = out.add_state(labels_[s]);
        inverse->push_back(s);
        out.set_atoms(remap[s], atoms_[s]);
      }
    }
    for (StateId s = 0; s < num_states(); ++s) {
      if (!reach[s]) continue;
      for (const auto& t : out_[s]) {
        if (reach[t.target]) out.add_transition(remap[s], t.action, remap[t.target]);
      }
    }
    out.set_start(remap[start_]);
    for (ActionId a : declared_) out.declare_action(a);
    return out;
  }
  for (StateId s = 0; s < num_states(); ++s) {
    if (reach[s]) {
      remap[s] = out.add_state(labels_[s]);
      out.set_atoms(remap[s], atoms_[s]);
    }
  }
  for (StateId s = 0; s < num_states(); ++s) {
    if (!reach[s]) continue;
    for (const auto& t : out_[s]) {
      if (reach[t.target]) out.add_transition(remap[s], t.action, remap[t.target]);
    }
  }
  out.set_start(remap[start_]);
  for (ActionId a : declared_) out.declare_action(a);
  return out;
}

std::size_t Fsp::depth() const {
  auto order = digraph().topological_order();
  if (!order) throw std::logic_error("Fsp::depth: process is cyclic");
  std::vector<std::size_t> dist(num_states(), 0);
  std::size_t best = 0;
  for (StateId s : *order) {
    for (const auto& t : out_[s]) {
      dist[t.target] = std::max(dist[t.target], dist[s] + 1);
      best = std::max(best, dist[t.target]);
    }
  }
  return best;
}

std::string Fsp::to_dot() const {
  std::string dot = "digraph \"" + name_ + "\" {\n  rankdir=LR;\n";
  dot += "  start [shape=point];\n  start -> s" + std::to_string(start_) + ";\n";
  for (StateId s = 0; s < num_states(); ++s) {
    dot += "  s" + std::to_string(s) + " [label=\"" + state_label(s) + "\"";
    if (is_leaf(s)) dot += ", shape=doublecircle";
    dot += "];\n";
  }
  for (StateId s = 0; s < num_states(); ++s) {
    for (const auto& t : out_[s]) {
      std::string label = t.action == kTau ? std::string("τ") : alphabet_->name(t.action);
      dot += "  s" + std::to_string(s) + " -> s" + std::to_string(t.target) + " [label=\"" +
             label + "\"];\n";
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace ccfsp
