#include "fsp/generate.hpp"

#include <cassert>
#include <stdexcept>

namespace ccfsp {

namespace {

ActionId pick_label(Rng& rng, const std::vector<ActionId>& pool, double tau_probability) {
  if (tau_probability > 0 && rng.uniform01() < tau_probability) return kTau;
  return pool[rng.below(pool.size())];
}

}  // namespace

Fsp random_tree_fsp(Rng& rng, const AlphabetPtr& alphabet, const std::vector<ActionId>& pool,
                    const TreeFspOptions& opt, const std::string& name) {
  if (pool.empty()) throw std::invalid_argument("random_tree_fsp: empty action pool");
  Fsp f(alphabet, name);
  StateId root = f.add_state();
  f.set_start(root);
  std::vector<StateId> open{root};
  std::vector<std::size_t> child_count{0};
  while (f.num_states() < opt.num_states) {
    // Attach a fresh state under a random parent that still has capacity.
    std::size_t pi = rng.below(open.size());
    StateId parent = open[pi];
    StateId child = f.add_state();
    child_count.push_back(0);
    f.add_transition(parent, pick_label(rng, pool, opt.tau_probability), child);
    open.push_back(child);
    if (++child_count[pi] >= opt.max_children) {
      open[pi] = open.back();
      child_count[pi] = child_count.back();
      open.pop_back();
      child_count.pop_back();
    }
  }
  return f;
}

Fsp random_linear_fsp(Rng& rng, const AlphabetPtr& alphabet, const std::vector<ActionId>& pool,
                      std::size_t length, double tau_probability, const std::string& name) {
  if (pool.empty()) throw std::invalid_argument("random_linear_fsp: empty action pool");
  Fsp f(alphabet, name);
  StateId prev = f.add_state();
  f.set_start(prev);
  for (std::size_t i = 0; i < length; ++i) {
    StateId next = f.add_state();
    f.add_transition(prev, pick_label(rng, pool, tau_probability), next);
    prev = next;
  }
  return f;
}

Fsp random_acyclic_fsp(Rng& rng, const AlphabetPtr& alphabet, const std::vector<ActionId>& pool,
                       const TreeFspOptions& opt, std::size_t extra_edges,
                       const std::string& name) {
  Fsp f = random_tree_fsp(rng, alphabet, pool, opt, name);
  // Add forward edges (lower id -> strictly higher id keeps the DAG shape,
  // because tree states are created in topological order).
  for (std::size_t i = 0; i < extra_edges && f.num_states() >= 2; ++i) {
    StateId from = static_cast<StateId>(rng.below(f.num_states() - 1));
    StateId to = static_cast<StateId>(from + 1 + rng.below(f.num_states() - from - 1));
    f.add_transition(from, pick_label(rng, pool, opt.tau_probability), to);
  }
  return f;
}

Fsp random_cyclic_fsp(Rng& rng, const AlphabetPtr& alphabet, const std::vector<ActionId>& pool,
                      std::size_t num_states, std::size_t extra_edges, const std::string& name) {
  if (pool.empty()) throw std::invalid_argument("random_cyclic_fsp: empty action pool");
  if (num_states == 0) throw std::invalid_argument("random_cyclic_fsp: need >= 1 state");
  Fsp f(alphabet, name);
  for (std::size_t i = 0; i < num_states; ++i) f.add_state();
  f.set_start(0);
  // Spanning reachability: state i+1 hangs off a random state <= i.
  for (StateId s = 1; s < num_states; ++s) {
    StateId parent = static_cast<StateId>(rng.below(s));
    f.add_transition(parent, pool[rng.below(pool.size())], s);
  }
  // No leaves: give every out-degree-0 state a transition to a random state
  // (possibly creating the cycles that make the process live).
  for (StateId s = 0; s < num_states; ++s) {
    if (f.is_leaf(s)) {
      f.add_transition(s, pool[rng.below(pool.size())],
                       static_cast<StateId>(rng.below(num_states)));
    }
  }
  for (std::size_t i = 0; i < extra_edges; ++i) {
    StateId from = static_cast<StateId>(rng.below(num_states));
    StateId to = static_cast<StateId>(rng.below(num_states));
    f.add_transition(from, pool[rng.below(pool.size())], to);
  }
  assert(!f.has_leaves());
  return f;
}

}  // namespace ccfsp
