// A small text DSL for FSPs and networks, so examples can be written as
// readable specifications. Grammar (comments run # to end of line):
//
//   process <name> {
//     start <state> ;            # optional; default = first state mentioned
//     <state> -<action>-> <state> ;   # action "tau" = unobservable
//     alphabet <a> <b> ... ;     # optional extra Sigma members
//   }
//
// A file may contain several process blocks; parse_network returns them all
// over one shared Alphabet (and it is the caller's job to wrap them in a
// Network, which validates the pairwise-sharing condition of Definition 2).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fsp/fsp.hpp"

namespace ccfsp {

/// The one error type the parser is allowed to raise: every failure —
/// lexical, syntactic, or a semantic rejection surfaced by FspBuilder
/// (unreachable state, reserved action name, ...) — is reported as a
/// ParseError carrying the source position and the offending token, so a
/// tool driving the parser on untrusted input can always point at the
/// problem. Derives std::runtime_error; what() keeps the classic
/// "parse error at line N" phrasing.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, std::size_t column, const std::string& message,
             std::string token = "");

  /// 1-based source position of the offending token (the end of input
  /// counts as a position too, so both are always >= 1).
  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }
  /// The offending token's text; empty at end of input.
  const std::string& token() const { return token_; }
  /// The bare message, without the position prefix of what().
  const std::string& message() const { return message_; }

 private:
  std::size_t line_;
  std::size_t column_;
  std::string message_;
  std::string token_;
};

/// Parse exactly one process block. Throws ParseError on any failure.
Fsp parse_fsp(std::string_view text, const AlphabetPtr& alphabet);

/// Parse all process blocks in the text, sharing `alphabet`.
std::vector<Fsp> parse_processes(std::string_view text, const AlphabetPtr& alphabet);

/// Render a process back to DSL form (parse_fsp . to_dsl == identity up to
/// state naming).
std::string to_dsl(const Fsp& fsp);

/// Render a whole process list; parse_processes inverts it.
std::string to_dsl(const std::vector<Fsp>& processes);

}  // namespace ccfsp
