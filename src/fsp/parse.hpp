// A small text DSL for FSPs and networks, so examples can be written as
// readable specifications. Grammar (comments run # to end of line):
//
//   process <name> {
//     start <state> ;            # optional; default = first state mentioned
//     <state> -<action>-> <state> ;   # action "tau" = unobservable
//     alphabet <a> <b> ... ;     # optional extra Sigma members
//   }
//
// A file may contain several process blocks; parse_network returns them all
// over one shared Alphabet (and it is the caller's job to wrap them in a
// Network, which validates the pairwise-sharing condition of Definition 2).
#pragma once

#include <string_view>
#include <vector>

#include "fsp/fsp.hpp"

namespace ccfsp {

/// Parse exactly one process block. Throws std::runtime_error with a
/// line-numbered message on syntax errors.
Fsp parse_fsp(std::string_view text, const AlphabetPtr& alphabet);

/// Parse all process blocks in the text, sharing `alphabet`.
std::vector<Fsp> parse_processes(std::string_view text, const AlphabetPtr& alphabet);

/// Render a process back to DSL form (parse_fsp . to_dsl == identity up to
/// state naming).
std::string to_dsl(const Fsp& fsp);

/// Render a whole process list; parse_processes inverts it.
std::string to_dsl(const std::vector<Fsp>& processes);

}  // namespace ccfsp
