#include "fsp/cache.hpp"

#include <atomic>
#include <set>

#include "util/failpoint.hpp"
#include "util/flat_interner.hpp"
#include "util/metrics.hpp"

namespace ccfsp {

// A failure mid-fill (budget trip, injected or real bad_alloc) unwinds the
// constructor, so no partially-populated cache object can ever exist —
// callers either hold a complete cache or none at all.
FspAnalysisCache::FspAnalysisCache(const Fsp& f, const Budget* budget) : fsp_(&f) {
  metrics::ScopedSpan span("fsp_cache.build");
  const std::size_t n = f.num_states();
  metrics::add(metrics::Counter::kFspCacheBuilds);
  metrics::add(metrics::Counter::kFspCacheStates, n);
  closures_.reserve(n);
  ready_.reserve(n);
  arrows_.resize(n);
  for (StateId s = 0; s < n; ++s) {
    failpoint::hit("cache.fill");
    closures_.push_back(f.tau_closure(s));
    ready_.push_back(f.ready_actions(s));
    const std::size_t bytes = closures_.back().size() * sizeof(StateId) + 32;
    bytes_ += bytes;
    if (budget) budget->charge(0, bytes, "fsp_cache");
  }
  for (StateId s = 0; s < n; ++s) {
    if (budget) budget->tick("fsp_cache");
    std::map<ActionId, std::set<StateId>> acc;
    for (StateId q : closures_[s]) {
      for (const auto& t : f.out(q)) {
        if (t.action == kTau) continue;
        for (StateId r : closures_[t.target]) acc[t.action].insert(r);
      }
    }
    std::size_t bytes = 0;
    for (auto& [a, states] : acc) {
      bytes += states.size() * sizeof(StateId) + 48;
      arrows_[s].emplace(a, std::vector<StateId>(states.begin(), states.end()));
    }
    bytes_ += bytes;
    if (budget) budget->charge(0, bytes, "fsp_cache");
  }
}

const std::vector<StateId>& FspAnalysisCache::arrow_successors(StateId s, ActionId a) const {
  auto it = arrows_[s].find(a);
  return it == arrows_[s].end() ? empty_ : it->second;
}

namespace {

std::string router_label(const NfLabelShape& sh, std::uint32_t r) {
  std::vector<ActionId> path;
  for (std::uint32_t cur = r; sh.parent[cur] != UINT32_MAX; cur = sh.parent[cur]) {
    path.push_back(sh.via[cur]);
  }
  std::string out = "n";
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    out += "_" + sh.alphabet->name(*it);
  }
  return out;
}

/// Canonical structure fingerprint: [n, start, deg_0, (canon act, tgt)...,
/// deg_1, ...] with actions renumbered densely in first-use order over that
/// very traversal (tau = 0, real actions from 1). Equal encodings imply the
/// two processes differ only by the action bijection the two first-use
/// orders induce — the prefix up to any word determines how the next word
/// is read, so the encoding is unambiguous.
struct CanonFingerprint {
  std::vector<std::uint32_t> enc;
  std::vector<ActionId> real_of_canon;   // [0] = kTau
  std::vector<std::uint32_t> canon_of_real;  // by real action; UINT32_MAX unseen
};

CanonFingerprint fingerprint_of(const Fsp& p) {
  CanonFingerprint fp;
  fp.canon_of_real.assign(p.alphabet()->size(), UINT32_MAX);
  fp.real_of_canon.push_back(kTau);
  auto canon = [&fp](ActionId a) -> std::uint32_t {
    if (a == kTau) return 0;
    if (fp.canon_of_real[a] == UINT32_MAX) {
      fp.canon_of_real[a] = static_cast<std::uint32_t>(fp.real_of_canon.size());
      fp.real_of_canon.push_back(a);
    }
    return fp.canon_of_real[a];
  };
  fp.enc.reserve(2 + p.num_states() + 2 * p.num_transitions());
  fp.enc.push_back(static_cast<std::uint32_t>(p.num_states()));
  fp.enc.push_back(p.start());
  for (StateId s = 0; s < p.num_states(); ++s) {
    const auto& out = p.out(s);
    fp.enc.push_back(static_cast<std::uint32_t>(out.size()));
    for (const auto& t : out) {
      fp.enc.push_back(canon(t.action));
      fp.enc.push_back(t.target);
    }
  }
  return fp;
}

}  // namespace

std::string NfLabelShape::label(StateId s) const {
  if (s < num_routers) return router_label(*this, s);
  return router_label(*this, owner[s - num_routers]) + "!";
}

std::optional<Fsp> NormalFormMemo::find(const Fsp& p, std::size_t limit,
                                        const Budget* budget) {
  metrics::add(metrics::Counter::kNfMemoLookups);
  if (!budget) budget = budget_;
  CanonFingerprint fp = fingerprint_of(p);
  const std::uint64_t h = hash_words(fp.enc.data(), fp.enc.size());

  // The rebuild runs under the lock: the blueprint lives in the LRU entry,
  // and a concurrent store could evict it from under an unlocked reader.
  // Rebuilds are proportional to the (reduced) normal form, so the critical
  // section stays far smaller than the work a hit saves.
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = nullptr;
  auto bucket = buckets_.find(h);
  if (bucket != buckets_.end()) {
    for (Lru::iterator it : bucket->second) {
      if (it->key == fp.enc) {
        entries_.splice(entries_.begin(), entries_, it);  // refresh LRU order
        entry = &*it;
        break;
      }
    }
  }
  if (!entry) {
    ++misses_;
    metrics::add(metrics::Counter::kNfMemoMisses);
    return std::nullopt;
  }
  ++hits_;
  metrics::add(metrics::Counter::kNfMemoHits);
  failpoint::hit("cache.nf_memo");
  const Blueprint& bp = entry->bp;

  // Behave exactly like the poss_normal_form call this replaces: same
  // state-count limit (with the same BudgetExceeded taxonomy) and the same
  // aggregate budget charge for the states built.
  if (bp.num_states > limit) {
    throw BudgetExceeded(BudgetDimension::kStates, "poss_normal_form", limit + 1,
                         (limit + 1) * 24);
  }
  if (budget) budget->charge(bp.num_states, bp.num_states * 24, "poss_normal_form");

  auto shape = std::make_shared<NfLabelShape>();
  shape->alphabet = p.alphabet();
  shape->num_routers = bp.num_routers;
  shape->parent = bp.parent;
  shape->via.reserve(bp.via_canon.size());
  for (std::uint32_t v : bp.via_canon) {
    shape->via.push_back(v == 0 ? kTau : fp.real_of_canon[v]);
  }
  shape->owner = bp.owner;

  Fsp out(p.alphabet(), p.name() + "_nf");
  out.set_label_provider([shape](StateId s) { return shape->label(s); });
  for (std::uint32_t s = 0; s < bp.num_states; ++s) out.add_state();
  out.set_start(bp.start);
  ActionSet used(p.alphabet()->size());
  for (std::uint32_t s = 0; s < bp.num_states; ++s) {
    for (std::uint32_t k = bp.off[s]; k < bp.off[s + 1]; ++k) {
      const std::uint32_t c = bp.act_canon[k];
      const ActionId a = c == 0 ? kTau : fp.real_of_canon[c];
      out.add_transition(s, a, bp.tgt[k]);
      if (a != kTau) used.set(a);
    }
  }
  // Sigma is re-derived from the querying process, exactly as the rebuilt
  // normal form would declare it (see poss_normal_form).
  for (ActionId a : p.sigma()) {
    if (!used.test(a)) out.declare_action(a);
  }
  return out;
}

void NormalFormMemo::evict_lru_locked() {
  // The failpoint fires *before* the entry is unlinked, so an injected
  // bad_alloc leaves the cache consistent (merely still over its cap; the
  // next store resumes evicting).
  failpoint::hit("cache.evict");
  Entry& victim = entries_.back();
  auto bucket = buckets_.find(victim.hash);
  if (bucket != buckets_.end()) {
    auto& ids = bucket->second;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (&*ids[i] == &victim) {
        ids[i] = ids.back();
        ids.pop_back();
        break;
      }
    }
    if (ids.empty()) buckets_.erase(bucket);
  }
  bytes_ -= victim.entry_bytes;
  ++evictions_;
  metrics::add(metrics::Counter::kCacheEvictions);
  entries_.pop_back();
}

void NormalFormMemo::store(const Fsp& p, const Fsp& nf,
                           std::shared_ptr<const NfLabelShape> shape,
                           const Budget* budget) {
  if (!budget) budget = budget_;
  CanonFingerprint fp = fingerprint_of(p);
  const std::uint64_t h = hash_words(fp.enc.data(), fp.enc.size());

  std::lock_guard<std::mutex> lock(mu_);
  if (auto bucket = buckets_.find(h); bucket != buckets_.end()) {
    for (Lru::iterator it : bucket->second) {
      if (it->key == fp.enc) return;  // already stored
    }
  }

  Blueprint bp;
  bp.num_states = static_cast<std::uint32_t>(nf.num_states());
  bp.start = nf.start();
  bp.num_routers = shape->num_routers;
  bp.off.reserve(nf.num_states() + 1);
  bp.off.push_back(0);
  for (StateId s = 0; s < nf.num_states(); ++s) {
    for (const auto& t : nf.out(s)) {
      // Every normal-form action is a transition action of p, so it has a
      // canon id in p's fingerprint.
      bp.act_canon.push_back(t.action == kTau ? 0 : fp.canon_of_real[t.action]);
      bp.tgt.push_back(t.target);
    }
    bp.off.push_back(static_cast<std::uint32_t>(bp.tgt.size()));
  }
  bp.parent = shape->parent;
  bp.via_canon.reserve(shape->via.size());
  for (ActionId a : shape->via) {
    bp.via_canon.push_back(a == kTau ? 0 : fp.canon_of_real[a]);
  }
  bp.owner = shape->owner;

  const std::size_t entry_bytes =
      (fp.enc.size() + bp.off.size() + bp.act_canon.size() + bp.tgt.size() +
       bp.parent.size() + bp.via_canon.size() + bp.owner.size()) *
          sizeof(std::uint32_t) +
      160;
  if (entry_bytes > max_bytes_) return;  // could never fit, even alone
  failpoint::hit("cache.nf_memo");
  if (budget) budget->charge(0, entry_bytes, "nf_memo");
  // Counted only past the cap/duplicate early-outs: stores that retain bytes.
  metrics::add(metrics::Counter::kNfMemoStores);
  metrics::add(metrics::Counter::kNfMemoStoredBytes, entry_bytes);

  entries_.push_front(Entry{std::move(fp.enc), h, entry_bytes, std::move(bp)});
  buckets_[h].push_back(entries_.begin());
  bytes_ += entry_bytes;
  while (bytes_ > max_bytes_) evict_lru_locked();
  metrics::record_max(metrics::Counter::kCacheBytes, bytes_);
}

std::size_t NormalFormMemo::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t NormalFormMemo::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t NormalFormMemo::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t NormalFormMemo::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t NormalFormMemo::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

namespace {

/// Re-parse an exported key as the fingerprint encoding fingerprint_of
/// produces: [n, start, deg_0, (canon act, tgt)..., deg_1, ...] with canon
/// action ids dense in first-use order. Returns the canon id bound (tau slot
/// included) — find() indexes real_of_canon with the blueprint's canon ids,
/// so every id an imported blueprint carries must stay under this bound —
/// or 0 if the words are not a well-formed encoding.
std::uint32_t scan_memo_key(const std::vector<std::uint32_t>& enc) {
  if (enc.size() < 2) return 0;
  const std::uint64_t n = enc[0];
  if (n == 0 || enc[1] >= n) return 0;
  std::size_t i = 2;
  std::uint32_t next_canon = 1;
  for (std::uint64_t s = 0; s < n; ++s) {
    if (i >= enc.size()) return 0;
    const std::uint64_t deg = enc[i++];
    for (std::uint64_t d = 0; d < deg; ++d) {
      if (i + 1 >= enc.size()) return 0;
      const std::uint32_t c = enc[i];
      const std::uint32_t t = enc[i + 1];
      i += 2;
      if (c > next_canon) return 0;  // ids must appear densely, in first use order
      if (c == next_canon) ++next_canon;
      if (t >= n) return 0;
    }
  }
  return i == enc.size() ? next_canon : 0;
}

}  // namespace

std::vector<NormalFormMemo::ExportedEntry> NormalFormMemo::export_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ExportedEntry> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {  // front first == MRU first
    ExportedEntry x;
    x.key = e.key;
    x.num_states = e.bp.num_states;
    x.start = e.bp.start;
    x.num_routers = e.bp.num_routers;
    x.off = e.bp.off;
    x.act_canon = e.bp.act_canon;
    x.tgt = e.bp.tgt;
    x.parent = e.bp.parent;
    x.via_canon = e.bp.via_canon;
    x.owner = e.bp.owner;
    out.push_back(std::move(x));
  }
  return out;
}

bool NormalFormMemo::import_entry(const ExportedEntry& e) {
  // Everything find()'s rebuild dereferences must be proven in range here:
  // a snapshot survives CRC checks and is still untrusted input.
  const std::uint32_t canon_bound = scan_memo_key(e.key);
  if (canon_bound == 0) return false;
  if (e.num_states == 0 || e.start >= e.num_states) return false;
  if (e.num_routers > e.num_states) return false;
  if (e.off.size() != static_cast<std::size_t>(e.num_states) + 1) return false;
  if (e.off.front() != 0 || e.off.back() != e.tgt.size()) return false;
  for (std::size_t i = 1; i < e.off.size(); ++i) {
    if (e.off[i] < e.off[i - 1]) return false;
  }
  if (e.act_canon.size() != e.tgt.size()) return false;
  for (std::size_t k = 0; k < e.tgt.size(); ++k) {
    if (e.tgt[k] >= e.num_states || e.act_canon[k] >= canon_bound) return false;
  }
  if (e.parent.size() != e.num_routers || e.via_canon.size() != e.num_routers) {
    return false;
  }
  if (e.owner.size() != e.num_states - e.num_routers) return false;
  for (std::uint32_t r = 0; r < e.num_routers; ++r) {
    // Routers are created parent-before-child, so parent[r] < r; this also
    // makes the label walk provably terminating.
    if (e.parent[r] != UINT32_MAX && e.parent[r] >= r) return false;
    if (e.via_canon[r] >= canon_bound) return false;
  }
  for (std::uint32_t o : e.owner) {
    if (o >= e.num_routers) return false;
  }

  const std::uint64_t h = hash_words(e.key.data(), e.key.size());
  const std::size_t entry_bytes =
      (e.key.size() + e.off.size() + e.act_canon.size() + e.tgt.size() +
       e.parent.size() + e.via_canon.size() + e.owner.size()) *
          sizeof(std::uint32_t) +
      160;
  if (entry_bytes > max_bytes_) return false;

  std::lock_guard<std::mutex> lock(mu_);
  if (auto bucket = buckets_.find(h); bucket != buckets_.end()) {
    for (Lru::iterator it : bucket->second) {
      if (it->key == e.key) return false;  // already present
    }
  }
  Blueprint bp;
  bp.num_states = e.num_states;
  bp.start = e.start;
  bp.num_routers = e.num_routers;
  bp.off = e.off;
  bp.act_canon = e.act_canon;
  bp.tgt = e.tgt;
  bp.parent = e.parent;
  bp.via_canon = e.via_canon;
  bp.owner = e.owner;
  // Appended at the cold end so importing in export order (MRU first)
  // reproduces the exported LRU order exactly.
  entries_.push_back(Entry{e.key, h, entry_bytes, std::move(bp)});
  buckets_[h].push_back(std::prev(entries_.end()));
  bytes_ += entry_bytes;
  while (bytes_ > max_bytes_) evict_lru_locked();
  metrics::record_max(metrics::Counter::kCacheBytes, bytes_);
  return true;
}

namespace {

/// The shared-pool key speaks *real* action ids (the tables it guards do),
/// so it prepends the alphabet size — ready-set bitsets are sized to it —
/// and encodes actions without canonicalization.
std::vector<std::uint32_t> exact_key_of(const Fsp& f) {
  std::vector<std::uint32_t> key;
  key.reserve(3 + f.num_states() + 2 * f.num_transitions());
  key.push_back(static_cast<std::uint32_t>(f.alphabet()->size()));
  key.push_back(static_cast<std::uint32_t>(f.num_states()));
  key.push_back(f.start());
  for (StateId s = 0; s < f.num_states(); ++s) {
    const auto& out = f.out(s);
    key.push_back(static_cast<std::uint32_t>(out.size()));
    for (const auto& t : out) {
      key.push_back(t.action == kTau ? 0 : static_cast<std::uint32_t>(t.action) + 1);
      key.push_back(t.target);
    }
  }
  return key;
}

std::atomic<SharedCacheRegistry*> g_registry{nullptr};

}  // namespace

SharedCacheRegistry::SharedCacheRegistry(Config cfg)
    : memo_(cfg.memo_max_bytes), fsp_max_bytes_(cfg.fsp_cache_max_bytes) {}

std::shared_ptr<const FspAnalysisCache> SharedCacheRegistry::fsp_cache(const Fsp& f,
                                                                       const Budget* budget) {
  std::vector<std::uint32_t> key = exact_key_of(f);
  const std::uint64_t h = hash_words(key.data(), key.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto bucket = buckets_.find(h); bucket != buckets_.end()) {
      for (Lru::iterator it : bucket->second) {
        if (it->key == key) {
          pool_.splice(pool_.begin(), pool_, it);
          ++pool_hits_;
          std::shared_ptr<const FspAnalysisCache> cache = it->cache;
          // Charge-equivalence, outside the lock-free fast path's reach but
          // inside the entry's lifetime: levy exactly what the build would
          // have cost this budget. May throw BudgetExceeded — the entry
          // stays cached for the next, better-funded request.
          if (budget) budget->charge(0, cache->bytes(), "fsp_cache");
          return cache;
        }
      }
    }
    ++pool_misses_;
  }

  // Build outside the lock: the build is the expensive part, and two
  // concurrent misses on the same key merely build twice — the second
  // store finds the key present and adopts the first's entry.
  auto owned = std::make_shared<const Fsp>(f);
  auto cache = std::make_shared<const FspAnalysisCache>(*owned, budget);

  std::lock_guard<std::mutex> lock(mu_);
  if (auto bucket = buckets_.find(h); bucket != buckets_.end()) {
    for (Lru::iterator it : bucket->second) {
      if (it->key == key) return it->cache;  // raced: keep the first build
    }
  }
  const std::size_t entry_bytes = cache->bytes() + key.size() * sizeof(std::uint32_t) + 256;
  if (entry_bytes <= fsp_max_bytes_) {
    pool_.push_front(PoolEntry{std::move(key), h, entry_bytes, owned, cache});
    buckets_[h].push_back(pool_.begin());
    pool_bytes_ += entry_bytes;
    while (pool_bytes_ > fsp_max_bytes_) {
      failpoint::hit("cache.evict");
      PoolEntry& victim = pool_.back();
      auto bucket = buckets_.find(victim.hash);
      if (bucket != buckets_.end()) {
        auto& ids = bucket->second;
        for (std::size_t i = 0; i < ids.size(); ++i) {
          if (&*ids[i] == &victim) {
            ids[i] = ids.back();
            ids.pop_back();
            break;
          }
        }
        if (ids.empty()) buckets_.erase(bucket);
      }
      pool_bytes_ -= victim.entry_bytes;
      ++pool_evictions_;
      metrics::add(metrics::Counter::kCacheEvictions);
      pool_.pop_back();  // outstanding shared_ptrs keep evicted tables alive
    }
    metrics::record_max(metrics::Counter::kCacheBytes, pool_bytes_);
  }
  return cache;
}

std::vector<std::shared_ptr<const Fsp>> SharedCacheRegistry::fsp_pool_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const Fsp>> out;
  out.reserve(pool_.size());
  for (const PoolEntry& e : pool_) out.push_back(e.owned);  // MRU first
  return out;
}

std::size_t SharedCacheRegistry::fsp_cache_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_.size();
}

std::size_t SharedCacheRegistry::fsp_cache_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_bytes_;
}

std::size_t SharedCacheRegistry::fsp_cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_hits_;
}

std::size_t SharedCacheRegistry::fsp_cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_misses_;
}

std::size_t SharedCacheRegistry::fsp_cache_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_evictions_;
}

SharedCacheRegistry* SharedCacheRegistry::current() {
  return g_registry.load(std::memory_order_acquire);
}

void SharedCacheRegistry::install(SharedCacheRegistry* r) {
  g_registry.store(r, std::memory_order_release);
}

}  // namespace ccfsp
