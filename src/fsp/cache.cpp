#include "fsp/cache.hpp"

#include <set>

#include "util/failpoint.hpp"
#include "util/flat_interner.hpp"
#include "util/metrics.hpp"

namespace ccfsp {

// A failure mid-fill (budget trip, injected or real bad_alloc) unwinds the
// constructor, so no partially-populated cache object can ever exist —
// callers either hold a complete cache or none at all.
FspAnalysisCache::FspAnalysisCache(const Fsp& f, const Budget* budget) : fsp_(&f) {
  metrics::ScopedSpan span("fsp_cache.build");
  const std::size_t n = f.num_states();
  metrics::add(metrics::Counter::kFspCacheBuilds);
  metrics::add(metrics::Counter::kFspCacheStates, n);
  closures_.reserve(n);
  ready_.reserve(n);
  arrows_.resize(n);
  for (StateId s = 0; s < n; ++s) {
    failpoint::hit("cache.fill");
    closures_.push_back(f.tau_closure(s));
    ready_.push_back(f.ready_actions(s));
    if (budget) {
      budget->charge(0, closures_.back().size() * sizeof(StateId) + 32, "fsp_cache");
    }
  }
  for (StateId s = 0; s < n; ++s) {
    if (budget) budget->tick("fsp_cache");
    std::map<ActionId, std::set<StateId>> acc;
    for (StateId q : closures_[s]) {
      for (const auto& t : f.out(q)) {
        if (t.action == kTau) continue;
        for (StateId r : closures_[t.target]) acc[t.action].insert(r);
      }
    }
    std::size_t bytes = 0;
    for (auto& [a, states] : acc) {
      bytes += states.size() * sizeof(StateId) + 48;
      arrows_[s].emplace(a, std::vector<StateId>(states.begin(), states.end()));
    }
    if (budget) budget->charge(0, bytes, "fsp_cache");
  }
}

const std::vector<StateId>& FspAnalysisCache::arrow_successors(StateId s, ActionId a) const {
  auto it = arrows_[s].find(a);
  return it == arrows_[s].end() ? empty_ : it->second;
}

namespace {

std::string router_label(const NfLabelShape& sh, std::uint32_t r) {
  std::vector<ActionId> path;
  for (std::uint32_t cur = r; sh.parent[cur] != UINT32_MAX; cur = sh.parent[cur]) {
    path.push_back(sh.via[cur]);
  }
  std::string out = "n";
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    out += "_" + sh.alphabet->name(*it);
  }
  return out;
}

/// Canonical structure fingerprint: [n, start, deg_0, (canon act, tgt)...,
/// deg_1, ...] with actions renumbered densely in first-use order over that
/// very traversal (tau = 0, real actions from 1). Equal encodings imply the
/// two processes differ only by the action bijection the two first-use
/// orders induce — the prefix up to any word determines how the next word
/// is read, so the encoding is unambiguous.
struct CanonFingerprint {
  std::vector<std::uint32_t> enc;
  std::vector<ActionId> real_of_canon;   // [0] = kTau
  std::vector<std::uint32_t> canon_of_real;  // by real action; UINT32_MAX unseen
};

CanonFingerprint fingerprint_of(const Fsp& p) {
  CanonFingerprint fp;
  fp.canon_of_real.assign(p.alphabet()->size(), UINT32_MAX);
  fp.real_of_canon.push_back(kTau);
  auto canon = [&fp](ActionId a) -> std::uint32_t {
    if (a == kTau) return 0;
    if (fp.canon_of_real[a] == UINT32_MAX) {
      fp.canon_of_real[a] = static_cast<std::uint32_t>(fp.real_of_canon.size());
      fp.real_of_canon.push_back(a);
    }
    return fp.canon_of_real[a];
  };
  fp.enc.reserve(2 + p.num_states() + 2 * p.num_transitions());
  fp.enc.push_back(static_cast<std::uint32_t>(p.num_states()));
  fp.enc.push_back(p.start());
  for (StateId s = 0; s < p.num_states(); ++s) {
    const auto& out = p.out(s);
    fp.enc.push_back(static_cast<std::uint32_t>(out.size()));
    for (const auto& t : out) {
      fp.enc.push_back(canon(t.action));
      fp.enc.push_back(t.target);
    }
  }
  return fp;
}

}  // namespace

std::string NfLabelShape::label(StateId s) const {
  if (s < num_routers) return router_label(*this, s);
  return router_label(*this, owner[s - num_routers]) + "!";
}

std::optional<Fsp> NormalFormMemo::find(const Fsp& p, std::size_t limit) {
  metrics::add(metrics::Counter::kNfMemoLookups);
  CanonFingerprint fp = fingerprint_of(p);
  const Entry* entry = nullptr;
  auto bucket = buckets_.find(hash_words(fp.enc.data(), fp.enc.size()));
  if (bucket != buckets_.end()) {
    for (std::uint32_t id : bucket->second) {
      if (entries_[id].key == fp.enc) {
        entry = &entries_[id];
        break;
      }
    }
  }
  if (!entry) {
    ++misses_;
    metrics::add(metrics::Counter::kNfMemoMisses);
    return std::nullopt;
  }
  ++hits_;
  metrics::add(metrics::Counter::kNfMemoHits);
  failpoint::hit("cache.nf_memo");
  const Blueprint& bp = entry->bp;

  // Behave exactly like the poss_normal_form call this replaces: same
  // state-count limit (with the same BudgetExceeded taxonomy) and the same
  // aggregate budget charge for the states built.
  if (bp.num_states > limit) {
    throw BudgetExceeded(BudgetDimension::kStates, "poss_normal_form", limit + 1,
                         (limit + 1) * 24);
  }
  if (budget_) budget_->charge(bp.num_states, bp.num_states * 24, "poss_normal_form");

  auto shape = std::make_shared<NfLabelShape>();
  shape->alphabet = p.alphabet();
  shape->num_routers = bp.num_routers;
  shape->parent = bp.parent;
  shape->via.reserve(bp.via_canon.size());
  for (std::uint32_t v : bp.via_canon) {
    shape->via.push_back(v == 0 ? kTau : fp.real_of_canon[v]);
  }
  shape->owner = bp.owner;

  Fsp out(p.alphabet(), p.name() + "_nf");
  out.set_label_provider([shape](StateId s) { return shape->label(s); });
  for (std::uint32_t s = 0; s < bp.num_states; ++s) out.add_state();
  out.set_start(bp.start);
  ActionSet used(p.alphabet()->size());
  for (std::uint32_t s = 0; s < bp.num_states; ++s) {
    for (std::uint32_t k = bp.off[s]; k < bp.off[s + 1]; ++k) {
      const std::uint32_t c = bp.act_canon[k];
      const ActionId a = c == 0 ? kTau : fp.real_of_canon[c];
      out.add_transition(s, a, bp.tgt[k]);
      if (a != kTau) used.set(a);
    }
  }
  // Sigma is re-derived from the querying process, exactly as the rebuilt
  // normal form would declare it (see poss_normal_form).
  for (ActionId a : p.sigma()) {
    if (!used.test(a)) out.declare_action(a);
  }
  return out;
}

void NormalFormMemo::store(const Fsp& p, const Fsp& nf,
                           std::shared_ptr<const NfLabelShape> shape) {
  CanonFingerprint fp = fingerprint_of(p);
  const std::uint64_t h = hash_words(fp.enc.data(), fp.enc.size());
  for (std::uint32_t id : buckets_[h]) {
    if (entries_[id].key == fp.enc) return;  // already stored
  }

  Blueprint bp;
  bp.num_states = static_cast<std::uint32_t>(nf.num_states());
  bp.start = nf.start();
  bp.num_routers = shape->num_routers;
  bp.off.reserve(nf.num_states() + 1);
  bp.off.push_back(0);
  for (StateId s = 0; s < nf.num_states(); ++s) {
    for (const auto& t : nf.out(s)) {
      // Every normal-form action is a transition action of p, so it has a
      // canon id in p's fingerprint.
      bp.act_canon.push_back(t.action == kTau ? 0 : fp.canon_of_real[t.action]);
      bp.tgt.push_back(t.target);
    }
    bp.off.push_back(static_cast<std::uint32_t>(bp.tgt.size()));
  }
  bp.parent = shape->parent;
  bp.via_canon.reserve(shape->via.size());
  for (ActionId a : shape->via) {
    bp.via_canon.push_back(a == kTau ? 0 : fp.canon_of_real[a]);
  }
  bp.owner = shape->owner;

  const std::size_t entry_bytes =
      (fp.enc.size() + bp.off.size() + bp.act_canon.size() + bp.tgt.size() +
       bp.parent.size() + bp.via_canon.size() + bp.owner.size()) *
          sizeof(std::uint32_t) +
      160;
  if (bytes_ + entry_bytes > max_bytes_) return;
  failpoint::hit("cache.nf_memo");
  if (budget_) budget_->charge(0, entry_bytes, "nf_memo");
  // Counted only past the cap/duplicate early-outs: stores that retain bytes.
  metrics::add(metrics::Counter::kNfMemoStores);
  metrics::add(metrics::Counter::kNfMemoStoredBytes, entry_bytes);

  const std::uint32_t id = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(Entry{std::move(fp.enc), std::move(bp)});
  buckets_[h].push_back(id);
  bytes_ += entry_bytes;
}

}  // namespace ccfsp
