#include "fsp/cache.hpp"

#include <set>

#include "util/failpoint.hpp"

namespace ccfsp {

// A failure mid-fill (budget trip, injected or real bad_alloc) unwinds the
// constructor, so no partially-populated cache object can ever exist —
// callers either hold a complete cache or none at all.
FspAnalysisCache::FspAnalysisCache(const Fsp& f, const Budget* budget) : fsp_(&f) {
  const std::size_t n = f.num_states();
  closures_.reserve(n);
  ready_.reserve(n);
  arrows_.resize(n);
  for (StateId s = 0; s < n; ++s) {
    failpoint::hit("cache.fill");
    closures_.push_back(f.tau_closure(s));
    ready_.push_back(f.ready_actions(s));
    if (budget) {
      budget->charge(0, closures_.back().size() * sizeof(StateId) + 32, "fsp_cache");
    }
  }
  for (StateId s = 0; s < n; ++s) {
    if (budget) budget->tick("fsp_cache");
    std::map<ActionId, std::set<StateId>> acc;
    for (StateId q : closures_[s]) {
      for (const auto& t : f.out(q)) {
        if (t.action == kTau) continue;
        for (StateId r : closures_[t.target]) acc[t.action].insert(r);
      }
    }
    std::size_t bytes = 0;
    for (auto& [a, states] : acc) {
      bytes += states.size() * sizeof(StateId) + 48;
      arrows_[s].emplace(a, std::vector<StateId>(states.begin(), states.end()));
    }
    if (budget) budget->charge(0, bytes, "fsp_cache");
  }
}

const std::vector<StateId>& FspAnalysisCache::arrow_successors(StateId s, ActionId a) const {
  auto it = arrows_[s].find(a);
  return it == arrows_[s].end() ? empty_ : it->second;
}

}  // namespace ccfsp
