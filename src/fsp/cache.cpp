#include "fsp/cache.hpp"

#include <set>

namespace ccfsp {

FspAnalysisCache::FspAnalysisCache(const Fsp& f) : fsp_(&f) {
  const std::size_t n = f.num_states();
  closures_.reserve(n);
  ready_.reserve(n);
  arrows_.resize(n);
  for (StateId s = 0; s < n; ++s) {
    closures_.push_back(f.tau_closure(s));
    ready_.push_back(f.ready_actions(s));
  }
  for (StateId s = 0; s < n; ++s) {
    std::map<ActionId, std::set<StateId>> acc;
    for (StateId q : closures_[s]) {
      for (const auto& t : f.out(q)) {
        if (t.action == kTau) continue;
        for (StateId r : closures_[t.target]) acc[t.action].insert(r);
      }
    }
    for (auto& [a, states] : acc) {
      arrows_[s].emplace(a, std::vector<StateId>(states.begin(), states.end()));
    }
  }
}

const std::vector<StateId>& FspAnalysisCache::arrow_successors(StateId s, ActionId a) const {
  auto it = arrows_[s].find(a);
  return it == arrows_[s].end() ? empty_ : it->second;
}

}  // namespace ccfsp
