// The action alphabet shared by every process of a network. Actions are
// interned to dense ids so that hot paths compare integers and represent
// action sets as bitsets; the unobservable action tau is a reserved id that
// never appears in an Alphabet.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "util/bitset.hpp"
#include "util/interner.hpp"

namespace ccfsp {

using ActionId = std::uint32_t;

/// The unobservable action. Not a member of any alphabet (Definition 1:
/// tau is not in Sigma); transitions may carry it, action sets may not.
inline constexpr ActionId kTau = 0xffffffffu;

/// A set of observable actions over a fixed Alphabet universe.
using ActionSet = DynamicBitset;

/// Interned universe of observable action names. One Alphabet instance is
/// shared (via shared_ptr) by all FSPs of a network and everything composed
/// from them, so their ActionSets are directly compatible.
class Alphabet {
 public:
  ActionId intern(std::string_view name) { return interner_.intern(name); }
  std::optional<ActionId> find(std::string_view name) const { return interner_.find(name); }
  const std::string& name(ActionId a) const { return interner_.str(a); }
  std::size_t size() const { return interner_.size(); }

  ActionSet empty_set() const { return ActionSet(size()); }
  ActionSet make_set(std::initializer_list<std::string_view> names) {
    ActionSet s(size());
    for (auto n : names) s.set(intern(n));
    return s;
  }

 private:
  Interner interner_;
};

using AlphabetPtr = std::shared_ptr<Alphabet>;

}  // namespace ccfsp
