// Seeded random FSP generators. The paper supplies no workloads, so these
// provide the controllable synthetic families used by tests (cross-validating
// fast algorithms against the explicit-global-machine oracle) and benches.
#pragma once

#include <vector>

#include "fsp/fsp.hpp"
#include "util/rng.hpp"

namespace ccfsp {

struct TreeFspOptions {
  std::size_t num_states = 8;
  double tau_probability = 0.15;  // probability an edge is a tau move
  std::size_t max_children = 3;
};

/// Random tree FSP with edges labeled from `pool` (or tau).
Fsp random_tree_fsp(Rng& rng, const AlphabetPtr& alphabet, const std::vector<ActionId>& pool,
                    const TreeFspOptions& opt, const std::string& name);

/// Random linear FSP (a path) of `length` transitions labeled from `pool`.
Fsp random_linear_fsp(Rng& rng, const AlphabetPtr& alphabet, const std::vector<ActionId>& pool,
                      std::size_t length, double tau_probability, const std::string& name);

/// Random acyclic FSP: a random tree plus `extra_edges` forward edges.
Fsp random_acyclic_fsp(Rng& rng, const AlphabetPtr& alphabet, const std::vector<ActionId>& pool,
                       const TreeFspOptions& opt, std::size_t extra_edges,
                       const std::string& name);

/// Random cyclic FSP with no leaves and no tau moves (the Section 4 normal
/// assumptions): every state has at least one outgoing transition and every
/// state is reachable from the start.
Fsp random_cyclic_fsp(Rng& rng, const AlphabetPtr& alphabet, const std::vector<ActionId>& pool,
                      std::size_t num_states, std::size_t extra_edges, const std::string& name);

}  // namespace ccfsp
