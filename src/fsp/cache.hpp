// Precomputed per-state analysis tables for one FSP: tau closures, ready
// sets, and arrow-successor lookup. Fsp computes these on demand with fresh
// allocations, which is fine for one-shot queries but dominates the game
// solver's inner loop (every belief member of every position); the cache
// turns each into a table lookup.
//
// Also home to NormalFormMemo, the subtree-normal-form memo of the Theorem 3
// pipeline: repeated subtree composites (wave/ktree families produce the
// same composite at many tree nodes, up to a renaming of actions) are
// fingerprinted by their action-canonical structure and their normal form
// is rebuilt from a stored blueprint instead of recomputed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fsp/fsp.hpp"
#include "util/budget.hpp"

namespace ccfsp {

class FspAnalysisCache {
 public:
  /// Building the tables is O(states * closure^2 * degree) — on a large
  /// composed context this is minutes of work, so the build itself polls
  /// `budget` (when given) and charges its table footprint.
  explicit FspAnalysisCache(const Fsp& f, const Budget* budget = nullptr);

  const Fsp& fsp() const { return *fsp_; }
  const std::vector<StateId>& tau_closure(StateId s) const { return closures_[s]; }
  const ActionSet& ready_actions(StateId s) const { return ready_[s]; }
  /// s ==a==> targets, tau-closed and sorted (empty vector if none).
  const std::vector<StateId>& arrow_successors(StateId s, ActionId a) const;

 private:
  const Fsp* fsp_;
  std::vector<std::vector<StateId>> closures_;
  std::vector<ActionSet> ready_;
  std::vector<std::map<ActionId, std::vector<StateId>>> arrows_;
  std::vector<StateId> empty_;
};

/// The unfold-tree shape a possibility normal form's lazy labels read from:
/// router r's label is its parent's label plus "_" plus the arriving
/// action's name ("n" at the root), a stable state's label is its owning
/// router's plus "!". Defined at the fsp layer so NormalFormMemo can store
/// one shape in action-canonical form; semantics/normal_form.cpp fills it.
struct NfLabelShape {
  AlphabetPtr alphabet;
  std::uint32_t num_routers = 0;
  std::vector<std::uint32_t> parent;  // per router; UINT32_MAX at the root
  std::vector<ActionId> via;          // per router; action from the parent
  std::vector<std::uint32_t> owner;   // per stable state (id - num_routers)

  std::string label(StateId s) const;
};

/// Memo of Fsp -> possibility-normal-form results, keyed by a canonical
/// fingerprint of the *structure* of the input: states in id order, out
/// edges in stored order, actions densely renumbered in first-use order
/// (tau = 0). Two composites with equal fingerprints are identical up to an
/// action bijection, and the normal form is equivariant under action
/// bijections, so a stored blueprint (transitions and label shape in canon
/// action space) rebuilds a correct possibility normal form of the query:
/// the stored process's normal form transported through the bijection, with
/// labels and Sigma declarations re-derived from the querying process
/// (labels, atoms, and Sigma do not enter the key). When the query's
/// transition sequence matches the stored process's exactly — the common
/// case, the same subtree composite re-encountered — the rebuild is the
/// byte-for-byte Fsp poss_normal_form would produce. When it matches only
/// up to a renaming, the rebuild is isomorphic to poss_normal_form(query)
/// (same size, semantics, and label scheme) but may number states
/// differently, because poss_normal_form orders DFA children by ascending
/// *real* action id, which a renaming permutes. Downstream use is sound
/// either way: the pipeline replaces subtrees by *any* possibility-
/// equivalent process (Lemmas 2-5), and decisions depend only on that
/// equivalence class.
///
/// find() charges `budget` and enforces `limit` exactly like the
/// poss_normal_form call it replaces (same BudgetExceeded taxonomy);
/// store() charges its blueprint footprint under "nf_memo" and stops
/// accepting entries once `max_bytes` is reached. Both hit the
/// "cache.nf_memo" failpoint.
class NormalFormMemo {
 public:
  explicit NormalFormMemo(std::size_t max_bytes = 64u << 20, const Budget* budget = nullptr)
      : max_bytes_(max_bytes), budget_(budget) {}

  /// Rebuild the memoized normal form of a process isomorphic to p (up to
  /// action renaming), or nullopt if none is stored. Counts a hit or miss.
  std::optional<Fsp> find(const Fsp& p, std::size_t limit = 1u << 20);

  /// Record nf = poss_normal_form(p) with the label shape its provider
  /// reads from. No-op when the byte cap is reached or the key is present.
  void store(const Fsp& p, const Fsp& nf, std::shared_ptr<const NfLabelShape> shape);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t entries() const { return entries_.size(); }
  std::size_t bytes() const { return bytes_; }

 private:
  struct Blueprint {
    std::uint32_t num_states = 0;
    std::uint32_t start = 0;
    std::uint32_t num_routers = 0;
    std::vector<std::uint32_t> off;        // CSR over states
    std::vector<std::uint32_t> act_canon;  // edge actions, canon ids (0 = tau)
    std::vector<StateId> tgt;
    std::vector<std::uint32_t> parent;     // label shape, per router
    std::vector<std::uint32_t> via_canon;  // label shape, per router (0 at root)
    std::vector<std::uint32_t> owner;      // label shape, per stable state
  };
  struct Entry {
    std::vector<std::uint32_t> key;
    Blueprint bp;
  };

  std::size_t max_bytes_;
  const Budget* budget_;
  std::size_t hits_ = 0, misses_ = 0, bytes_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;  // hash -> entry ids
  std::vector<Entry> entries_;
};

}  // namespace ccfsp
