// Precomputed per-state analysis tables for one FSP: tau closures, ready
// sets, and arrow-successor lookup. Fsp computes these on demand with fresh
// allocations, which is fine for one-shot queries but dominates the game
// solver's inner loop (every belief member of every position); the cache
// turns each into a table lookup.
//
// Also home to NormalFormMemo, the subtree-normal-form memo of the Theorem 3
// pipeline: repeated subtree composites (wave/ktree families produce the
// same composite at many tree nodes, up to a renaming of actions) are
// fingerprinted by their action-canonical structure and their normal form
// is rebuilt from a stored blueprint instead of recomputed.
//
// Both caches are promotable to *cross-request* shared caches through
// SharedCacheRegistry (used by the ccfspd analysis service): byte-accounted,
// size-bounded with LRU eviction, and safe to hit from concurrent worker
// threads. The cardinal rule of sharing is charge-equivalence: a warm hit
// charges the caller's Budget exactly what the cold build would have, so a
// governed run's accounting — and therefore its report — cannot depend on
// cache temperature. That is what lets a long-lived daemon answer
// bit-identically to a fresh process.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fsp/fsp.hpp"
#include "util/budget.hpp"

namespace ccfsp {

class FspAnalysisCache {
 public:
  /// Building the tables is O(states * closure^2 * degree) — on a large
  /// composed context this is minutes of work, so the build itself polls
  /// `budget` (when given) and charges its table footprint.
  explicit FspAnalysisCache(const Fsp& f, const Budget* budget = nullptr);

  const Fsp& fsp() const { return *fsp_; }
  const std::vector<StateId>& tau_closure(StateId s) const { return closures_[s]; }
  const ActionSet& ready_actions(StateId s) const { return ready_[s]; }
  /// s ==a==> targets, tau-closed and sorted (empty vector if none).
  const std::vector<StateId>& arrow_successors(StateId s, ActionId a) const;

  /// Estimated bytes the tables retain — the exact total the build charged
  /// (or would have charged) against its budget. SharedCacheRegistry levies
  /// this same amount on every warm hit (charge-equivalence) and uses it
  /// for LRU byte accounting.
  std::size_t bytes() const { return bytes_; }

 private:
  const Fsp* fsp_;
  std::vector<std::vector<StateId>> closures_;
  std::vector<ActionSet> ready_;
  std::vector<std::map<ActionId, std::vector<StateId>>> arrows_;
  std::vector<StateId> empty_;
  std::size_t bytes_ = 0;
};

/// The unfold-tree shape a possibility normal form's lazy labels read from:
/// router r's label is its parent's label plus "_" plus the arriving
/// action's name ("n" at the root), a stable state's label is its owning
/// router's plus "!". Defined at the fsp layer so NormalFormMemo can store
/// one shape in action-canonical form; semantics/normal_form.cpp fills it.
struct NfLabelShape {
  AlphabetPtr alphabet;
  std::uint32_t num_routers = 0;
  std::vector<std::uint32_t> parent;  // per router; UINT32_MAX at the root
  std::vector<ActionId> via;          // per router; action from the parent
  std::vector<std::uint32_t> owner;   // per stable state (id - num_routers)

  std::string label(StateId s) const;
};

/// Memo of Fsp -> possibility-normal-form results, keyed by a canonical
/// fingerprint of the *structure* of the input: states in id order, out
/// edges in stored order, actions densely renumbered in first-use order
/// (tau = 0). Two composites with equal fingerprints are identical up to an
/// action bijection, and the normal form is equivariant under action
/// bijections, so a stored blueprint (transitions and label shape in canon
/// action space) rebuilds a correct possibility normal form of the query:
/// the stored process's normal form transported through the bijection, with
/// labels and Sigma declarations re-derived from the querying process
/// (labels, atoms, and Sigma do not enter the key). When the query's
/// transition sequence matches the stored process's exactly — the common
/// case, the same subtree composite re-encountered — the rebuild is the
/// byte-for-byte Fsp poss_normal_form would produce. When it matches only
/// up to a renaming, the rebuild is isomorphic to poss_normal_form(query)
/// (same size, semantics, and label scheme) but may number states
/// differently, because poss_normal_form orders DFA children by ascending
/// *real* action id, which a renaming permutes. Downstream use is sound
/// either way: the pipeline replaces subtrees by *any* possibility-
/// equivalent process (Lemmas 2-5), and decisions depend only on that
/// equivalence class.
///
/// find() charges a budget and enforces `limit` exactly like the
/// poss_normal_form call it replaces (same BudgetExceeded taxonomy);
/// store() charges its blueprint footprint under "nf_memo". The per-call
/// `budget` parameter overrides the constructor's — a memo shared across
/// requests is constructed budget-free and each request passes its own.
/// Entries are LRU-ordered (a hit refreshes); once retained bytes exceed
/// `max_bytes`, the coldest entries are evicted ("cache.evict" failpoint,
/// cache.evictions / cache.bytes counters). An entry larger than the whole
/// cap is simply not stored. All public methods are internally locked, so
/// one memo may serve concurrent analysis workers.
class NormalFormMemo {
 public:
  explicit NormalFormMemo(std::size_t max_bytes = 64u << 20, const Budget* budget = nullptr)
      : max_bytes_(max_bytes), budget_(budget) {}

  /// Rebuild the memoized normal form of a process isomorphic to p (up to
  /// action renaming), or nullopt if none is stored. Counts a hit or miss.
  /// A hit moves the entry to the front of the LRU order.
  std::optional<Fsp> find(const Fsp& p, std::size_t limit = 1u << 20,
                          const Budget* budget = nullptr);

  /// Record nf = poss_normal_form(p) with the label shape its provider
  /// reads from. No-op when the key is present or the entry alone exceeds
  /// the byte cap; otherwise stores and evicts LRU entries back under it.
  void store(const Fsp& p, const Fsp& nf, std::shared_ptr<const NfLabelShape> shape,
             const Budget* budget = nullptr);

  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t entries() const;
  std::size_t bytes() const;
  std::size_t evictions() const;

  /// One memo entry in portable form — the canonical key plus the blueprint
  /// columns, exactly what a warm restart needs to rebuild the entry. The
  /// daemon's cache snapshot (snapshot/cache_io) is the only intended
  /// producer/consumer.
  struct ExportedEntry {
    std::vector<std::uint32_t> key;
    std::uint32_t num_states = 0;
    std::uint32_t start = 0;
    std::uint32_t num_routers = 0;
    std::vector<std::uint32_t> off;
    std::vector<std::uint32_t> act_canon;
    std::vector<std::uint32_t> tgt;
    std::vector<std::uint32_t> parent;
    std::vector<std::uint32_t> via_canon;
    std::vector<std::uint32_t> owner;
  };

  /// Snapshot every entry, most recently used first.
  std::vector<ExportedEntry> export_entries() const;

  /// Re-admit one exported entry. Fully re-validates the key encoding and
  /// the blueprint shape (a snapshot passes CRC checks but is still
  /// untrusted input for find()'s rebuild), recomputes hash and byte
  /// accounting, and rejects duplicates and entries over the byte cap.
  /// Entries are appended coldest-so-far, so importing in export order
  /// reproduces the LRU order. Returns whether the entry was admitted.
  bool import_entry(const ExportedEntry& e);

 private:
  struct Blueprint {
    std::uint32_t num_states = 0;
    std::uint32_t start = 0;
    std::uint32_t num_routers = 0;
    std::vector<std::uint32_t> off;        // CSR over states
    std::vector<std::uint32_t> act_canon;  // edge actions, canon ids (0 = tau)
    std::vector<StateId> tgt;
    std::vector<std::uint32_t> parent;     // label shape, per router
    std::vector<std::uint32_t> via_canon;  // label shape, per router (0 at root)
    std::vector<std::uint32_t> owner;      // label shape, per stable state
  };
  struct Entry {
    std::vector<std::uint32_t> key;
    std::uint64_t hash = 0;
    std::size_t entry_bytes = 0;
    Blueprint bp;
  };
  using Lru = std::list<Entry>;

  void evict_lru_locked();

  std::size_t max_bytes_;
  const Budget* budget_;
  mutable std::mutex mu_;
  std::size_t hits_ = 0, misses_ = 0, bytes_ = 0, evictions_ = 0;
  Lru entries_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::vector<Lru::iterator>> buckets_;
};

/// Cross-request shared caches for a long-lived analysis service: one
/// NormalFormMemo and one pool of FspAnalysisCache tables, both LRU-bounded
/// and byte-accounted. The engine consults the *installed* registry (a
/// process-wide opt-in seam): the server installs one at startup, the CLI
/// and the test suite run with none and keep their per-run caches. Install /
/// uninstall must not race with in-flight analyses — the server does both
/// outside its worker pool's lifetime.
///
/// The FspAnalysisCache pool is keyed by the *exact* structure of the
/// process — state count, start, transitions with real action ids, and the
/// alphabet size the ready-set bitsets are sized to — because the tables
/// speak real action ids (unlike the memo's renaming-invariant key).
/// Repeated requests for the same model text intern their actions in the
/// same order, so the common case hits.
class SharedCacheRegistry {
 public:
  struct Config {
    std::size_t fsp_cache_max_bytes = 32u << 20;
    std::size_t memo_max_bytes = 64u << 20;
  };

  SharedCacheRegistry() : SharedCacheRegistry(Config()) {}
  explicit SharedCacheRegistry(Config cfg);

  /// The shared normal-form memo (thread-safe; pass per-request budgets to
  /// find/store).
  NormalFormMemo& memo() { return memo_; }
  const NormalFormMemo& memo() const { return memo_; }

  /// A cache for a process structurally identical to f, building and
  /// retaining one on miss. The returned pointer keeps the entry alive even
  /// if it is evicted mid-request. Charges `budget` the build's byte
  /// footprint on hit and miss alike (charge-equivalence).
  std::shared_ptr<const FspAnalysisCache> fsp_cache(const Fsp& f, const Budget* budget);

  /// The pooled processes, most recently used first — the warm-restart
  /// snapshot serializes these and re-admits them through fsp_cache()
  /// coldest-first on startup.
  std::vector<std::shared_ptr<const Fsp>> fsp_pool_entries() const;

  std::size_t fsp_cache_entries() const;
  std::size_t fsp_cache_bytes() const;
  std::size_t fsp_cache_hits() const;
  std::size_t fsp_cache_misses() const;
  std::size_t fsp_cache_evictions() const;

  /// The registry consulted by game.cpp / tree_pipeline.cpp (null when none
  /// is installed — the default).
  static SharedCacheRegistry* current();
  /// Install r (nullptr to uninstall). Not safe to call with analyses in
  /// flight.
  static void install(SharedCacheRegistry* r);

 private:
  struct PoolEntry {
    std::vector<std::uint32_t> key;
    std::uint64_t hash = 0;
    std::size_t entry_bytes = 0;
    std::shared_ptr<const Fsp> owned;  // the cache's fsp_ points into this
    std::shared_ptr<const FspAnalysisCache> cache;
  };
  using Lru = std::list<PoolEntry>;

  NormalFormMemo memo_;
  std::size_t fsp_max_bytes_;
  mutable std::mutex mu_;
  std::size_t pool_bytes_ = 0, pool_hits_ = 0, pool_misses_ = 0, pool_evictions_ = 0;
  Lru pool_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::vector<Lru::iterator>> buckets_;
};

}  // namespace ccfsp
