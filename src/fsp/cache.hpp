// Precomputed per-state analysis tables for one FSP: tau closures, ready
// sets, and arrow-successor lookup. Fsp computes these on demand with fresh
// allocations, which is fine for one-shot queries but dominates the game
// solver's inner loop (every belief member of every position); the cache
// turns each into a table lookup.
#pragma once

#include <map>
#include <vector>

#include "fsp/fsp.hpp"
#include "util/budget.hpp"

namespace ccfsp {

class FspAnalysisCache {
 public:
  /// Building the tables is O(states * closure^2 * degree) — on a large
  /// composed context this is minutes of work, so the build itself polls
  /// `budget` (when given) and charges its table footprint.
  explicit FspAnalysisCache(const Fsp& f, const Budget* budget = nullptr);

  const Fsp& fsp() const { return *fsp_; }
  const std::vector<StateId>& tau_closure(StateId s) const { return closures_[s]; }
  const ActionSet& ready_actions(StateId s) const { return ready_[s]; }
  /// s ==a==> targets, tau-closed and sorted (empty vector if none).
  const std::vector<StateId>& arrow_successors(StateId s, ActionId a) const;

 private:
  const Fsp* fsp_;
  std::vector<std::vector<StateId>> closures_;
  std::vector<ActionSet> ready_;
  std::vector<std::map<ActionId, std::vector<StateId>>> arrows_;
  std::vector<StateId> empty_;
};

}  // namespace ccfsp
