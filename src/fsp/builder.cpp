#include "fsp/builder.hpp"

#include <stdexcept>

namespace ccfsp {

StateId FspBuilder::state_id(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  StateId s = fsp_.add_state(std::string(name));
  ids_.emplace(std::string(name), s);
  if (!start_set_ && ids_.size() == 1) fsp_.set_start(s);
  return s;
}

FspBuilder& FspBuilder::trans(std::string_view from, std::string_view action,
                              std::string_view to) {
  StateId f = state_id(from);
  StateId t = state_id(to);
  ActionId a = action == "tau" ? kTau : fsp_.alphabet()->intern(action);
  fsp_.add_transition(f, a, t);
  return *this;
}

FspBuilder& FspBuilder::start(std::string_view state) {
  fsp_.set_start(state_id(state));
  start_set_ = true;
  return *this;
}

FspBuilder& FspBuilder::action(std::string_view name) {
  if (name == "tau") throw std::invalid_argument("FspBuilder: tau cannot be declared");
  fsp_.declare_action(fsp_.alphabet()->intern(name));
  return *this;
}

FspBuilder& FspBuilder::state(std::string_view name) {
  state_id(name);
  return *this;
}

Fsp FspBuilder::build() {
  fsp_.validate();
  return std::move(fsp_);
}

}  // namespace ccfsp
