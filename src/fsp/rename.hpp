// Action relabeling: instantiate a process template under an alphabet
// morphism (e.g. stamp out philosopher i from a generic philosopher by
// renaming take_left -> take3_3). Renaming must stay injective on the
// process's Sigma — gluing two distinct actions together would change
// synchronization behaviour silently, so it throws instead.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fsp/fsp.hpp"

namespace ccfsp {

/// Copy of `f` with every transition and declared action relabeled through
/// `mapping`; ids absent from the mapping keep themselves. Throws
/// std::invalid_argument if the restriction of the mapping to Sigma(f) is
/// not injective, or if tau appears on either side.
Fsp rename_actions(const Fsp& f, const std::map<ActionId, ActionId>& mapping,
                   const std::string& new_name);

/// Name-based convenience; right-hand names are interned on demand.
Fsp rename_actions(const Fsp& f,
                   const std::vector<std::pair<std::string, std::string>>& pairs,
                   const std::string& new_name);

}  // namespace ccfsp
