// Fluent construction of FSPs by state name. Examples and tests use this to
// transcribe the paper's figures without manual id bookkeeping.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "fsp/fsp.hpp"

namespace ccfsp {

class FspBuilder {
 public:
  FspBuilder(AlphabetPtr alphabet, std::string name)
      : fsp_(std::move(alphabet), std::move(name)) {}

  /// Add a transition, creating states on first mention. The first state
  /// ever mentioned becomes the start state unless start() is called.
  /// `action` == "tau" denotes the unobservable action.
  FspBuilder& trans(std::string_view from, std::string_view action, std::string_view to);

  FspBuilder& start(std::string_view state);

  /// Declare an action in Sigma that no transition uses.
  FspBuilder& action(std::string_view name);

  /// Add an isolated state (useful for single-state processes).
  FspBuilder& state(std::string_view name);

  /// Validate and return the process.
  Fsp build();

 private:
  StateId state_id(std::string_view name);

  Fsp fsp_;
  std::unordered_map<std::string, StateId> ids_;
  bool start_set_ = false;
};

}  // namespace ccfsp
