#include "network/ktree.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ccfsp {

std::size_t KTreePartition::part_of(std::size_t process) const {
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (std::binary_search(parts[i].begin(), parts[i].end(), process)) return i;
  }
  throw std::out_of_range("KTreePartition::part_of: process not in any part");
}

KTreePartition ktree_partition(const Network& net) {
  const UndirectedGraph& g = net.comm_graph();
  const std::size_t n = g.num_vertices();

  // Vertex sets of biconnected components (blocks).
  auto comps = g.biconnected_components();
  std::vector<std::set<std::size_t>> block_vertices;
  block_vertices.reserve(comps.size());
  for (const auto& edge_ids : comps) {
    // A bridge (single-edge block) must not merge its endpoints: a tree
    // would otherwise come out as a 2-tree instead of a 1-tree. Only truly
    // 2-connected blocks force their vertices into one part.
    if (edge_ids.size() < 2) continue;
    std::set<std::size_t> vs;
    for (std::size_t e : edge_ids) {
      auto [u, v] = g.edges()[e];
      vs.insert(u);
      vs.insert(v);
    }
    block_vertices.push_back(std::move(vs));
  }

  // Assign each vertex to exactly one block (cut vertices appear in many;
  // keep the first). Isolated vertices get singleton parts.
  std::vector<std::size_t> part_of(n, static_cast<std::size_t>(-1));
  KTreePartition out;
  for (const auto& vs : block_vertices) {
    std::vector<std::size_t> part;
    for (std::size_t v : vs) {
      if (part_of[v] == static_cast<std::size_t>(-1)) {
        part_of[v] = out.parts.size();
        part.push_back(v);
      }
    }
    if (!part.empty()) out.parts.push_back(std::move(part));
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (part_of[v] == static_cast<std::size_t>(-1)) {
      part_of[v] = out.parts.size();
      out.parts.push_back({v});
    }
  }

  // Quotient edges (dedup; cannot be cyclic because any C_N cycle lies inside
  // a single biconnected component, hence inside one part).
  std::set<std::pair<std::size_t, std::size_t>> qedges;
  for (auto [u, v] : g.edges()) {
    std::size_t a = part_of[u], b = part_of[v];
    if (a != b) qedges.insert({std::min(a, b), std::max(a, b)});
  }
  out.quotient_edges.assign(qedges.begin(), qedges.end());

  for (const auto& part : out.parts) out.width = std::max(out.width, part.size());
  return out;
}

bool is_valid_ktree_partition(const Network& net, const KTreePartition& partition) {
  const std::size_t n = net.size();
  std::vector<std::size_t> part_of(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < partition.parts.size(); ++i) {
    for (std::size_t v : partition.parts[i]) {
      if (v >= n || part_of[v] != static_cast<std::size_t>(-1)) return false;  // out of range / overlap
      part_of[v] = i;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (part_of[v] == static_cast<std::size_t>(-1)) return false;  // not covering
  }

  // Quotient graph induced by C_N must be acyclic (a forest).
  std::set<std::pair<std::size_t, std::size_t>> qedges;
  for (auto [u, v] : net.comm_graph().edges()) {
    std::size_t a = part_of[u], b = part_of[v];
    if (a != b) qedges.insert({std::min(a, b), std::max(a, b)});
  }
  UndirectedGraph q(partition.parts.size());
  for (auto [a, b] : qedges) q.add_edge(a, b);
  // A forest has #edges <= #vertices - #components; equivalently no cycle.
  // Reuse is_tree per connected component via a union-find cycle check.
  std::vector<std::size_t> parent(q.num_vertices());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (auto [a, b] : q.edges()) {
    std::size_t ra = find(a), rb = find(b);
    if (ra == rb) return false;  // cycle in quotient
    parent[ra] = rb;
  }
  return true;
}

}  // namespace ccfsp
