// A network of processes (Definition 2): a closed system of FSPs over one
// shared Alphabet in which every action symbol belongs to exactly two
// process alphabets, plus its communication graph C_N.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "fsp/action_index.hpp"
#include "fsp/fsp.hpp"
#include "util/graph.hpp"

namespace ccfsp {

class Network {
 public:
  /// Validates Definition 2: every action used or declared by some process
  /// appears in exactly two of the processes' alphabets. Throws
  /// std::logic_error otherwise.
  Network(AlphabetPtr alphabet, std::vector<Fsp> processes);

  const AlphabetPtr& alphabet() const { return alphabet_; }
  std::size_t size() const { return processes_.size(); }
  const Fsp& process(std::size_t i) const { return processes_[i]; }
  const std::vector<Fsp>& processes() const { return processes_; }

  /// Sum of state counts — the "size n" of Section 3.2.
  std::size_t total_states() const;
  std::size_t total_transitions() const;

  /// Sigma_i intersect Sigma_j.
  ActionSet shared_actions(std::size_t i, std::size_t j) const;

  /// The labeled undirected graph C_N: vertex per process, edge {i,j} iff
  /// Sigma_i and Sigma_j intersect.
  const UndirectedGraph& comm_graph() const { return comm_graph_; }

  bool is_tree_network() const { return comm_graph_.is_tree(); }
  bool is_ring_network() const { return comm_graph_.is_ring(); }

  /// True iff every process is a linear / tree / acyclic / cyclic FSP.
  bool all_linear() const;
  bool all_trees() const;
  bool all_acyclic() const;

  std::string to_dot() const;

  /// Per-process ActionIndexes (element i indexes process(i)), built on
  /// first use and cached for the network's lifetime — they are a pure
  /// function of the immutable processes, and rebuilding them per
  /// build_global call is measurable fixed cost on small models.
  /// Thread-safe; copies of a Network share the cache.
  const std::vector<ActionIndex>& action_indexes() const;

 private:
  struct IndexCache;

  AlphabetPtr alphabet_;
  std::vector<Fsp> processes_;
  UndirectedGraph comm_graph_;
  std::shared_ptr<IndexCache> index_cache_;
};

}  // namespace ccfsp
