#include "network/generate.hpp"

#include <stdexcept>
#include <string>

namespace ccfsp {

namespace {

/// Fresh action names for edge {i,j}: "e<i>_<j>_<k>".
std::vector<ActionId> edge_pool(Alphabet& alphabet, std::size_t i, std::size_t j,
                                std::size_t count) {
  std::vector<ActionId> pool;
  pool.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    pool.push_back(alphabet.intern("e" + std::to_string(i) + "_" + std::to_string(j) + "_" +
                                   std::to_string(k)));
  }
  return pool;
}

/// Random tree shape over `m` vertices: parent[v] for v >= 1.
std::vector<std::size_t> random_tree_shape(Rng& rng, std::size_t m) {
  std::vector<std::size_t> parent(m, 0);
  for (std::size_t v = 1; v < m; ++v) parent[v] = rng.below(v);
  return parent;
}

Network assemble(const AlphabetPtr& alphabet, Rng& rng, const NetworkGenOptions& opt,
                 const std::vector<std::vector<ActionId>>& pool_of, bool cyclic) {
  std::vector<Fsp> procs;
  procs.reserve(opt.num_processes);
  for (std::size_t i = 0; i < opt.num_processes; ++i) {
    const std::string name = "P" + std::to_string(i + 1);
    if (cyclic) {
      procs.push_back(random_cyclic_fsp(rng, alphabet, pool_of[i], opt.states_per_process,
                                        /*extra_edges=*/opt.states_per_process / 2, name));
    } else {
      TreeFspOptions topt;
      topt.num_states = opt.states_per_process;
      topt.tau_probability = opt.tau_probability;
      procs.push_back(random_tree_fsp(rng, alphabet, pool_of[i], topt, name));
    }
    // A random process may not use every pool symbol; declare the rest so
    // Sigma_i matches the intended communication structure.
    for (ActionId a : pool_of[i]) {
      const auto& sig = procs.back().sigma();
      if (!std::binary_search(sig.begin(), sig.end(), a)) procs.back().declare_action(a);
    }
  }
  return Network(alphabet, std::move(procs));
}

}  // namespace

Network random_tree_network(Rng& rng, const NetworkGenOptions& opt) {
  if (opt.num_processes == 0) throw std::invalid_argument("random_tree_network: empty");
  auto alphabet = std::make_shared<Alphabet>();
  auto parent = random_tree_shape(rng, opt.num_processes);
  std::vector<std::vector<ActionId>> pool_of(opt.num_processes);
  for (std::size_t v = 1; v < opt.num_processes; ++v) {
    auto pool = edge_pool(*alphabet, parent[v], v, opt.symbols_per_edge);
    pool_of[v].insert(pool_of[v].end(), pool.begin(), pool.end());
    pool_of[parent[v]].insert(pool_of[parent[v]].end(), pool.begin(), pool.end());
  }
  if (opt.num_processes == 1) {
    // A single process still needs a non-empty pool; give it a partner-less
    // symbol is not allowed by Definition 2, so require >= 2 processes.
    throw std::invalid_argument("random_tree_network: need >= 2 processes");
  }
  return assemble(alphabet, rng, opt, pool_of, /*cyclic=*/false);
}

Network random_ring_network(Rng& rng, const NetworkGenOptions& opt) {
  if (opt.num_processes < 3) throw std::invalid_argument("random_ring_network: need >= 3");
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<std::vector<ActionId>> pool_of(opt.num_processes);
  for (std::size_t v = 0; v < opt.num_processes; ++v) {
    std::size_t w = (v + 1) % opt.num_processes;
    auto pool = edge_pool(*alphabet, v, w, opt.symbols_per_edge);
    pool_of[v].insert(pool_of[v].end(), pool.begin(), pool.end());
    pool_of[w].insert(pool_of[w].end(), pool.begin(), pool.end());
  }
  return assemble(alphabet, rng, opt, pool_of, /*cyclic=*/false);
}

Network random_cyclic_tree_network(Rng& rng, const NetworkGenOptions& opt) {
  if (opt.num_processes < 2) throw std::invalid_argument("random_cyclic_tree_network: need >= 2");
  auto alphabet = std::make_shared<Alphabet>();
  auto parent = random_tree_shape(rng, opt.num_processes);
  std::vector<std::vector<ActionId>> pool_of(opt.num_processes);
  for (std::size_t v = 1; v < opt.num_processes; ++v) {
    auto pool = edge_pool(*alphabet, parent[v], v, opt.symbols_per_edge);
    pool_of[v].insert(pool_of[v].end(), pool.begin(), pool.end());
    pool_of[parent[v]].insert(pool_of[parent[v]].end(), pool.begin(), pool.end());
  }
  return assemble(alphabet, rng, opt, pool_of, /*cyclic=*/true);
}

Network random_linear_chain_network(Rng& rng, std::size_t num_processes,
                                    std::size_t process_length) {
  if (num_processes < 2) throw std::invalid_argument("random_linear_chain_network: need >= 2");
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<std::vector<ActionId>> pool_of(num_processes);
  for (std::size_t v = 0; v + 1 < num_processes; ++v) {
    auto pool = edge_pool(*alphabet, v, v + 1, 2);
    pool_of[v].insert(pool_of[v].end(), pool.begin(), pool.end());
    pool_of[v + 1].insert(pool_of[v + 1].end(), pool.begin(), pool.end());
  }
  std::vector<Fsp> procs;
  for (std::size_t i = 0; i < num_processes; ++i) {
    procs.push_back(random_linear_fsp(rng, alphabet, pool_of[i], process_length,
                                      /*tau_probability=*/0.1, "P" + std::to_string(i + 1)));
    for (ActionId a : pool_of[i]) {
      const auto& sig = procs.back().sigma();
      if (!std::binary_search(sig.begin(), sig.end(), a)) procs.back().declare_action(a);
    }
  }
  return Network(alphabet, std::move(procs));
}

namespace {

Network wave_network_from_parents(const std::vector<std::size_t>& parent, std::size_t rounds) {
  if (rounds == 0) throw std::invalid_argument("wave network: need >= 1 round");
  const std::size_t m = parent.size();
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> up(m, 0);  // up[v] = symbol of the v-parent edge
  for (std::size_t v = 1; v < m; ++v) {
    up[v] = alphabet->intern("w" + std::to_string(parent[v]) + "_" + std::to_string(v));
  }
  std::vector<std::vector<std::size_t>> children(m);
  for (std::size_t v = 1; v < m; ++v) children[parent[v]].push_back(v);

  std::vector<Fsp> procs;
  for (std::size_t v = 0; v < m; ++v) {
    Fsp f(alphabet, "W" + std::to_string(v));
    StateId cur = f.add_state();
    f.set_start(cur);
    for (std::size_t r = 0; r < rounds; ++r) {
      if (v != 0) {
        StateId next = f.add_state();
        f.add_transition(cur, up[v], next);
        cur = next;
      }
      for (std::size_t c : children[v]) {
        StateId next = f.add_state();
        f.add_transition(cur, up[c], next);
        cur = next;
      }
    }
    procs.push_back(std::move(f));
  }
  return Network(alphabet, std::move(procs));
}

}  // namespace

Network wave_tree_network(Rng& rng, std::size_t num_processes, std::size_t rounds) {
  if (num_processes < 2) throw std::invalid_argument("wave_tree_network: need >= 2");
  return wave_network_from_parents(random_tree_shape(rng, num_processes), rounds);
}

Network wave_chain_network(std::size_t num_processes, std::size_t rounds) {
  if (num_processes < 2) throw std::invalid_argument("wave_chain_network: need >= 2");
  std::vector<std::size_t> parent(num_processes, 0);
  for (std::size_t v = 1; v < num_processes; ++v) parent[v] = v - 1;
  return wave_network_from_parents(parent, rounds);
}

Network wave_ktree_network(std::size_t branching, std::size_t num_processes,
                           std::size_t rounds) {
  if (branching < 2) throw std::invalid_argument("wave_ktree_network: need branching >= 2");
  if (num_processes < 2) throw std::invalid_argument("wave_ktree_network: need >= 2");
  std::vector<std::size_t> parent(num_processes, 0);
  for (std::size_t v = 1; v < num_processes; ++v) parent[v] = (v - 1) / branching;
  return wave_network_from_parents(parent, rounds);
}

}  // namespace ccfsp
