// k-tree structure of a communication graph (Section 2.1): a partition of
// the processes into parts of size <= k whose quotient graph is a tree (or a
// forest when C_N is disconnected). A tree network is a 1-tree, a ring a
// 2-tree, and in general k is the largest biconnected component size.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "network/network.hpp"

namespace ccfsp {

struct KTreePartition {
  /// parts[i] = sorted process indices forming part i.
  std::vector<std::vector<std::size_t>> parts;
  /// Edges of the quotient graph over part indices (a forest).
  std::vector<std::pair<std::size_t, std::size_t>> quotient_edges;
  /// max_i |parts[i]| — the k of the k-tree.
  std::size_t width = 0;

  std::size_t part_of(std::size_t process) const;
};

/// Compute a k-tree partition of C_N via its block-cut structure: every
/// biconnected component becomes a part (articulation vertices are assigned
/// to exactly one incident part), so the quotient is the collapsed block-cut
/// tree and the width is the largest biconnected component size.
KTreePartition ktree_partition(const Network& net);

/// Verify that a claimed partition is a k-tree partition (parts disjoint and
/// covering, quotient graph acyclic). Used by tests and by the Theorem 3
/// pipeline before it trusts a user-supplied partition.
bool is_valid_ktree_partition(const Network& net, const KTreePartition& partition);

}  // namespace ccfsp
