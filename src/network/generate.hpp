// Seeded random network generators for tests and benchmarks: tree / ring /
// k-tree communication shapes populated with tree, acyclic, or cyclic FSPs.
#pragma once

#include "fsp/generate.hpp"
#include "network/network.hpp"
#include "util/rng.hpp"

namespace ccfsp {

struct NetworkGenOptions {
  std::size_t num_processes = 4;
  std::size_t symbols_per_edge = 2;  // |Sigma_i ∩ Sigma_j| on each C_N edge
  std::size_t states_per_process = 6;
  double tau_probability = 0.1;  // within processes (ignored for cyclic FSPs)
};

/// Tree-shaped C_N whose processes are tree FSPs — the Theorem 3 setting.
/// Process 0 is the natural distinguished process (root of the C_N shape).
Network random_tree_network(Rng& rng, const NetworkGenOptions& opt);

/// Ring-shaped C_N (num_processes >= 3) with tree FSPs — a 2-tree (Fig 8a).
Network random_ring_network(Rng& rng, const NetworkGenOptions& opt);

/// Tree-shaped C_N whose processes are cyclic FSPs without leaves or tau
/// moves — the Section 4 setting.
Network random_cyclic_tree_network(Rng& rng, const NetworkGenOptions& opt);

/// Chain C_N of linear processes — the Proposition 1 setting. Sequences are
/// random, so most instances deadlock quickly (useful for correctness
/// cross-validation, not for scaling studies).
Network random_linear_chain_network(Rng& rng, std::size_t num_processes,
                                    std::size_t process_length);

/// A "wave" network: tree-shaped C_N, single-symbol edges, every process a
/// *linear* tau-free FSP running `rounds` synchronization rounds — in each
/// round it handshakes its parent edge once, then each child edge once.
/// Deadlock-free by construction (the wait-for relation follows tree edges),
/// so every success predicate holds for every process, while the number of
/// reachable global interleavings grows combinatorially with the number of
/// independent branches. This is the scaling workload for the Prop 1 /
/// Thm 3 benches: per-process analysis stays linear, the global machine
/// does not.
Network wave_tree_network(Rng& rng, std::size_t num_processes, std::size_t rounds);

/// The chain-shaped special case (C_N a path), deterministic by m.
Network wave_chain_network(std::size_t num_processes, std::size_t rounds);

/// The complete-k-ary special case (parent of v is (v-1)/k), deterministic
/// by (k, m): all subtrees of equal height are identical up to the action
/// renaming of their edge symbols, the best case for the Theorem 3
/// subtree-normal-form memo.
Network wave_ktree_network(std::size_t branching, std::size_t num_processes,
                           std::size_t rounds);

}  // namespace ccfsp
