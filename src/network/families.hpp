// Named network families: the paper's worked examples (Figure 3), classic
// concurrency workloads used by the examples and benchmarks (dining
// philosophers, token ring), and the multiply-by-2 chain that Theorem 4's
// discussion appeals to ("it is easy to construct a chain of multiply-by-2
// processes").
#pragma once

#include <cstddef>

#include "network/network.hpp"

namespace ccfsp {

/// Figure 3: P = 1 -a-> 2 (linear); Q = 1 -a-> 2, 1 -tau-> 3.
/// S_c(P,Q) = true but S_u(P,Q) = false (Q's tau move strands P), and
/// S_a(P,Q) = false. The distinguished process is index 0.
Network figure3_network();

/// The Section 3.3 closing example: P branches on 'a' toward a leaf (right)
/// or toward a dead end (left); the context can tau away one collaborator.
/// Exhibits S_u = false, S_a = true, S_c = true simultaneously, which
/// separates all three predicates.
Network success_separation_network();

/// n philosophers and n forks around a table. Every process is a cyclic FSP
/// with no leaves and no tau moves; C_N is a ring of 2n nodes (a 2-tree).
/// The classic deadlock is "potential blocking" in the paper's vocabulary.
Network dining_philosophers(std::size_t n);

/// n stations passing a token around a ring; deadlock-free by construction,
/// so potential blocking must come out false.
Network token_ring(std::size_t n);

/// Chain of m cyclic processes where process i must handshake twice with
/// its parent for every handshake with its child; the number of root-level
/// actions achievable grows like 2^m, so unary-language normal forms need
/// O(m)-bit integers (Theorem 4).
Network multiply_by_2_chain(std::size_t m);

/// Generalization: each middle process buys `factor` parent handshakes per
/// child handshake, so the root budget is factor^(m-2). factor >= 1.
Network multiply_by_k_chain(std::size_t m, std::size_t factor);

}  // namespace ccfsp
