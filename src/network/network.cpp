#include "network/network.hpp"

#include <mutex>
#include <stdexcept>

namespace ccfsp {

struct Network::IndexCache {
  std::once_flag once;
  std::vector<ActionIndex> index;
};

const std::vector<ActionIndex>& Network::action_indexes() const {
  IndexCache& cache = *index_cache_;
  std::call_once(cache.once, [&] {
    cache.index.reserve(processes_.size());
    for (const Fsp& p : processes_) cache.index.emplace_back(p);
  });
  return cache.index;
}

Network::Network(AlphabetPtr alphabet, std::vector<Fsp> processes)
    : alphabet_(std::move(alphabet)),
      processes_(std::move(processes)),
      comm_graph_(0),
      index_cache_(std::make_shared<IndexCache>()) {
  if (processes_.empty()) throw std::logic_error("Network: empty process list");
  for (const auto& p : processes_) {
    if (p.alphabet() != alphabet_) {
      throw std::logic_error("Network: process '" + p.name() + "' uses a different Alphabet");
    }
    p.validate();
  }

  // Definition 2(2): each action belongs to exactly two process alphabets.
  std::vector<int> owners(alphabet_->size(), 0);
  for (const auto& p : processes_) {
    for (ActionId a : p.sigma()) ++owners[a];
  }
  for (ActionId a = 0; a < owners.size(); ++a) {
    if (owners[a] != 0 && owners[a] != 2) {
      throw std::logic_error("Network: action '" + alphabet_->name(a) + "' belongs to " +
                             std::to_string(owners[a]) + " processes (must be exactly 2)");
    }
  }

  comm_graph_ = UndirectedGraph(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    ActionSet si = processes_[i].sigma_set();
    for (std::size_t j = i + 1; j < processes_.size(); ++j) {
      if (si.intersects(processes_[j].sigma_set())) {
        comm_graph_.add_edge(i, j);
      }
    }
  }
}

std::size_t Network::total_states() const {
  std::size_t n = 0;
  for (const auto& p : processes_) n += p.num_states();
  return n;
}

std::size_t Network::total_transitions() const {
  std::size_t n = 0;
  for (const auto& p : processes_) n += p.num_transitions();
  return n;
}

ActionSet Network::shared_actions(std::size_t i, std::size_t j) const {
  return processes_[i].sigma_set() & processes_[j].sigma_set();
}

bool Network::all_linear() const {
  for (const auto& p : processes_) {
    if (!p.is_linear()) return false;
  }
  return true;
}

bool Network::all_trees() const {
  for (const auto& p : processes_) {
    if (!p.is_tree()) return false;
  }
  return true;
}

bool Network::all_acyclic() const {
  for (const auto& p : processes_) {
    if (!p.is_acyclic()) return false;
  }
  return true;
}

std::string Network::to_dot() const {
  std::string dot = "graph C_N {\n";
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    dot += "  p" + std::to_string(i) + " [label=\"" + processes_[i].name() + "\"];\n";
  }
  for (auto [u, v] : comm_graph_.edges()) {
    ActionSet shared = shared_actions(u, v);
    std::string label;
    for (std::size_t a : shared.to_indices()) {
      if (!label.empty()) label += ",";
      label += alphabet_->name(static_cast<ActionId>(a));
    }
    dot += "  p" + std::to_string(u) + " -- p" + std::to_string(v) + " [label=\"" + label +
           "\"];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace ccfsp
