#include "network/families.hpp"

#include <memory>
#include <stdexcept>
#include <string>

#include "fsp/builder.hpp"

namespace ccfsp {

Network figure3_network() {
  auto alphabet = std::make_shared<Alphabet>();
  Fsp p = FspBuilder(alphabet, "P").trans("1", "a", "2").build();
  Fsp q = FspBuilder(alphabet, "Q").trans("1", "a", "2").trans("1", "tau", "3").build();
  std::vector<Fsp> procs;
  procs.push_back(std::move(p));
  procs.push_back(std::move(q));
  return Network(alphabet, std::move(procs));
}

Network success_separation_network() {
  auto alphabet = std::make_shared<Alphabet>();
  // P branches on 'a': the left branch then needs a 'b' handshake with P4,
  // the right branch is already a leaf. P4 may silently defect (tau).
  Fsp p = FspBuilder(alphabet, "P")
              .trans("r", "a", "left")
              .trans("r", "a", "right")
              .trans("left", "b", "left_done")
              .build();
  Fsp p2 = FspBuilder(alphabet, "P2").trans("q0", "a", "q1").build();
  Fsp p4 = FspBuilder(alphabet, "P4")
               .trans("s0", "b", "s1")
               .trans("s0", "tau", "s2")
               .build();
  std::vector<Fsp> procs;
  procs.push_back(std::move(p));
  procs.push_back(std::move(p2));
  procs.push_back(std::move(p4));
  return Network(alphabet, std::move(procs));
}

Network dining_philosophers(std::size_t n) {
  if (n < 2) throw std::invalid_argument("dining_philosophers: need >= 2");
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;

  auto take = [&](std::size_t phil, std::size_t fork) {
    return "take" + std::to_string(phil) + "_" + std::to_string(fork);
  };
  auto put = [&](std::size_t phil, std::size_t fork) {
    return "put" + std::to_string(phil) + "_" + std::to_string(fork);
  };

  // Philosopher i grabs left fork i, then right fork (i+1) mod n, eats,
  // releases in the same order, forever.
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t left = i, right = (i + 1) % n;
    procs.push_back(FspBuilder(alphabet, "Phil" + std::to_string(i))
                        .trans("think", take(i, left), "one")
                        .trans("one", take(i, right), "eat")
                        .trans("eat", put(i, left), "halfdone")
                        .trans("halfdone", put(i, right), "think")
                        .build());
  }
  // Fork j alternates take/put with whichever adjacent philosopher grabbed
  // it: philosopher j (as left fork) or philosopher (j-1+n)%n (as right).
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t as_left_of = j, as_right_of = (j + n - 1) % n;
    procs.push_back(FspBuilder(alphabet, "Fork" + std::to_string(j))
                        .trans("free", take(as_left_of, j), "heldL")
                        .trans("heldL", put(as_left_of, j), "free")
                        .trans("free", take(as_right_of, j), "heldR")
                        .trans("heldR", put(as_right_of, j), "free")
                        .build());
  }
  return Network(alphabet, std::move(procs));
}

Network token_ring(std::size_t n) {
  if (n < 2) throw std::invalid_argument("token_ring: need >= 2");
  auto alphabet = std::make_shared<Alphabet>();
  auto pass = [&](std::size_t i) { return "pass" + std::to_string(i); };
  std::vector<Fsp> procs;
  // Station 0 holds the token initially: it sends first, then waits.
  procs.push_back(FspBuilder(alphabet, "St0")
                      .trans("have", pass(0), "wait")
                      .trans("wait", pass(n - 1), "have")
                      .build());
  for (std::size_t i = 1; i < n; ++i) {
    procs.push_back(FspBuilder(alphabet, "St" + std::to_string(i))
                        .trans("wait", pass(i - 1), "have")
                        .trans("have", pass(i), "wait")
                        .build());
  }
  return Network(alphabet, std::move(procs));
}

Network multiply_by_2_chain(std::size_t m) { return multiply_by_k_chain(m, 2); }

Network multiply_by_k_chain(std::size_t m, std::size_t factor) {
  if (m < 2) throw std::invalid_argument("multiply_by_k_chain: need >= 2 processes");
  if (factor < 1) throw std::invalid_argument("multiply_by_k_chain: factor >= 1");
  auto alphabet = std::make_shared<Alphabet>();
  auto tally = [&](std::size_t i) { return "t" + std::to_string(i); };
  std::vector<Fsp> procs;

  // Root: distinguished process, counts t1 handshakes forever.
  procs.push_back(FspBuilder(alphabet, "Root").trans("r", tally(1), "r").build());

  // Middles: one child handshake buys `factor` parent handshakes.
  for (std::size_t i = 1; i + 1 < m; ++i) {
    FspBuilder b(alphabet, "M" + std::to_string(i));
    b.start("s0");
    b.trans("s0", tally(i + 1), "s1");
    for (std::size_t k = 1; k < factor; ++k) {
      b.trans("s" + std::to_string(k), tally(i), "s" + std::to_string(k + 1));
    }
    b.trans("s" + std::to_string(factor), tally(i), "s0");
    procs.push_back(b.build());
  }

  // Budget: allows exactly one handshake on the last edge, then stops.
  // (Deliberately has a leaf — this is where finiteness enters the chain;
  // see DESIGN.md on the Theorem 4 family.)
  procs.push_back(FspBuilder(alphabet, "Budget").trans("b0", tally(m - 1), "b1").build());

  return Network(alphabet, std::move(procs));
}

}  // namespace ccfsp
