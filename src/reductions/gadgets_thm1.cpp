#include "reductions/gadgets_thm1.hpp"

#include <map>
#include <stdexcept>
#include <string>

#include "fsp/builder.hpp"

namespace ccfsp {

namespace {

void require_three_cnf(const Cnf& f) {
  for (const Clause& c : f.clauses) {
    if (c.empty() || c.size() > 3) {
      throw std::invalid_argument("gadget: formula must be 3-CNF (use to_three_sat)");
    }
  }
}

std::string sym_clause(std::size_t j) { return "s" + std::to_string(j); }

/// Occurrences of variable v, split by polarity: clause indices (with
/// multiplicity — a padded clause may repeat a literal).
struct Occurrences {
  std::vector<std::vector<std::size_t>> positive;  // per var: clause indices
  std::vector<std::vector<std::size_t>> negative;
};

Occurrences collect_occurrences(const Cnf& f) {
  Occurrences occ;
  occ.positive.resize(f.num_vars);
  occ.negative.resize(f.num_vars);
  for (std::size_t j = 0; j < f.clauses.size(); ++j) {
    for (const Literal& l : f.clauses[j]) {
      (l.negated ? occ.negative : occ.positive)[l.var].push_back(j);
    }
  }
  return occ;
}

}  // namespace

Cnf limit_occurrences(const Cnf& f) {
  Cnf out;
  out.num_vars = 0;
  // First count occurrences per variable.
  std::vector<std::size_t> count(f.num_vars, 0);
  for (const Clause& c : f.clauses) {
    for (const Literal& l : c) ++count[l.var];
  }
  // Assign copies: variable v gets max(count, 1) copies; occurrence k of v
  // uses copy k. Copies are fresh variables, chained by implications.
  std::vector<std::vector<std::uint32_t>> copies(f.num_vars);
  for (std::uint32_t v = 0; v < f.num_vars; ++v) {
    std::size_t k = std::max<std::size_t>(count[v], 1);
    for (std::size_t i = 0; i < k; ++i) copies[v].push_back(out.num_vars++);
  }
  // Occurrence rewriting.
  std::vector<std::size_t> next(f.num_vars, 0);
  for (const Clause& c : f.clauses) {
    Clause nc;
    for (const Literal& l : c) {
      nc.push_back({copies[l.var][next[l.var]++], l.negated});
    }
    out.clauses.push_back(std::move(nc));
  }
  // Equality cycle x1 -> x2 -> ... -> xk -> x1 as (~xi | x_{i+1}); skip
  // singletons. Each copy gains exactly one extra positive and one extra
  // negative occurrence, so every copy has <= 2 of each polarity.
  for (std::uint32_t v = 0; v < f.num_vars; ++v) {
    const auto& cs = copies[v];
    if (cs.size() < 2) continue;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      std::uint32_t a = cs[i], b = cs[(i + 1) % cs.size()];
      out.clauses.push_back({{a, true}, {b, false}});
    }
  }
  return out;
}

GadgetNetwork thm1_case1_collab_gadget(const Cnf& f) {
  require_three_cnf(f);
  auto alphabet = std::make_shared<Alphabet>();
  Occurrences occ = collect_occurrences(f);

  // W: one tau-diamond per variable; the TRUE branch emits s_j for every
  // clause that contains ~x (those literals go false), the FALSE branch for
  // every clause containing x. W completes iff every clause keeps <= 2
  // false literals, i.e. the assignment satisfies the formula.
  FspBuilder w(alphabet, "W");
  auto v_state = [](std::size_t i) { return "v" + std::to_string(i); };
  w.start(v_state(0));
  for (std::uint32_t i = 0; i < f.num_vars; ++i) {
    for (bool branch_true : {true, false}) {
      const auto& emits = branch_true ? occ.negative[i] : occ.positive[i];
      std::string cur = "b" + std::to_string(i) + (branch_true ? "T" : "F") + "0";
      w.trans(v_state(i), "tau", cur);
      for (std::size_t k = 0; k < emits.size(); ++k) {
        std::string nxt = "b" + std::to_string(i) + (branch_true ? "T" : "F") +
                          std::to_string(k + 1);
        w.trans(cur, sym_clause(emits[k]), nxt);
        cur = nxt;
      }
      w.trans(cur, "tau", v_state(i + 1));
    }
  }
  w.state(v_state(f.num_vars));  // ensure the leaf exists even with 0 vars

  std::vector<Fsp> procs;
  procs.push_back(w.build());
  for (std::size_t j = 0; j < f.clauses.size(); ++j) {
    // Capacity |clause| - 1: all literal occurrences false = one emission
    // too many (see gadget_thm2.cpp for the same counter).
    FspBuilder b(alphabet, "K" + std::to_string(j));
    b.start("k0");
    for (std::size_t k = 0; k + 1 < f.clauses[j].size(); ++k) {
      b.trans("k" + std::to_string(k), sym_clause(j), "k" + std::to_string(k + 1));
    }
    if (f.clauses[j].size() == 1) b.action(sym_clause(j));
    procs.push_back(b.build());
  }
  return {Network(alphabet, std::move(procs)), 0};
}

GadgetNetwork thm1_case1_blocking_gadget(const Cnf& f) {
  require_three_cnf(f);
  auto alphabet = std::make_shared<Alphabet>();
  Occurrences occ = collect_occurrences(f);

  // W: optional (tau-skippable) emissions for TRUE literals; final state F
  // demands one s_j per clause with a dummy leaf behind each. F deadlocks
  // exactly when every clause process has already consumed its single
  // permitted handshake — i.e. the chosen assignment satisfies the formula.
  FspBuilder w(alphabet, "W");
  auto v_state = [](std::size_t i) { return "v" + std::to_string(i); };
  w.start(v_state(0));
  for (std::uint32_t i = 0; i < f.num_vars; ++i) {
    for (bool branch_true : {true, false}) {
      const auto& emits = branch_true ? occ.positive[i] : occ.negative[i];
      std::string cur = "b" + std::to_string(i) + (branch_true ? "T" : "F") + "0";
      w.trans(v_state(i), "tau", cur);
      for (std::size_t k = 0; k < emits.size(); ++k) {
        std::string nxt = "b" + std::to_string(i) + (branch_true ? "T" : "F") +
                          std::to_string(k + 1);
        w.trans(cur, sym_clause(emits[k]), nxt);
        w.trans(cur, "tau", nxt);  // emitting is optional
        cur = nxt;
      }
      w.trans(cur, "tau", v_state(i + 1));
    }
  }
  std::string final_state = "F";
  w.trans(v_state(f.num_vars), "tau", final_state);
  for (std::size_t j = 0; j < f.clauses.size(); ++j) {
    w.trans(final_state, sym_clause(j), "dummy" + std::to_string(j));
  }

  std::vector<Fsp> procs;
  procs.push_back(w.build());
  for (std::size_t j = 0; j < f.clauses.size(); ++j) {
    procs.push_back(FspBuilder(alphabet, "K" + std::to_string(j))
                        .trans("k0", sym_clause(j), "k1")
                        .build());
  }
  return {Network(alphabet, std::move(procs)), 0};
}

namespace {

/// Shared plumbing for the case (2) gadgets: variable processes with
/// optional per-occurrence emissions, clause processes that accept one
/// literal handshake and then relay a token g_{j-1} -> g_j along the clause
/// chain, a starter that injects g_0.
struct Case2Parts {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs;  // all but the distinguished end process

  static std::string sym_occurrence(std::size_t j, std::size_t slot) {
    return "u" + std::to_string(j) + "_" + std::to_string(slot);
  }
  static std::string sym_token(std::size_t j) { return "g" + std::to_string(j); }

  void build(const Cnf& f) {
    // Occurrence slots per clause: (var, negated) with slot index.
    struct Slot {
      std::size_t clause;
      std::size_t slot;
    };
    std::vector<std::vector<Slot>> pos(f.num_vars), neg(f.num_vars);
    for (std::size_t j = 0; j < f.clauses.size(); ++j) {
      for (std::size_t s = 0; s < f.clauses[j].size(); ++s) {
        const Literal& l = f.clauses[j][s];
        (l.negated ? neg : pos)[l.var].push_back({j, s});
      }
    }

    for (std::uint32_t v = 0; v < f.num_vars; ++v) {
      FspBuilder b(alphabet, "V" + std::to_string(v));
      b.start("r");
      // Each emission is optional (emit or skip); keeping the process a
      // *tree* FSP (the Theorem 1 case (2) shape) means the emit and skip
      // branches may not rejoin, so the suffix is duplicated per branch —
      // 2^occurrences states, constant once occurrences are limited.
      std::size_t fresh = 0;
      for (bool branch_true : {true, false}) {
        const auto& slots = branch_true ? pos[v] : neg[v];
        std::string entry = std::string(branch_true ? "T" : "F");
        b.trans("r", "tau", entry);
        auto grow = [&](auto&& self, const std::string& cur, std::size_t k) -> void {
          if (k == slots.size()) return;
          std::string emit = entry + std::to_string(fresh++);
          std::string skip = entry + std::to_string(fresh++);
          b.trans(cur, sym_occurrence(slots[k].clause, slots[k].slot), emit);
          b.trans(cur, "tau", skip);
          self(self, emit, k + 1);
          self(self, skip, k + 1);
        };
        grow(grow, entry, 0);
      }
      procs.push_back(b.build());
    }

    for (std::size_t j = 0; j < f.clauses.size(); ++j) {
      FspBuilder b(alphabet, "K" + std::to_string(j));
      b.start("c0");
      for (std::size_t s = 0; s < f.clauses[j].size(); ++s) {
        b.trans("c0", sym_occurrence(j, s), "c1_" + std::to_string(s));
        b.trans("c1_" + std::to_string(s), sym_token(j == 0 ? 0 : j), "hold_" + std::to_string(s));
        b.trans("hold_" + std::to_string(s), sym_token(j + 1), "done_" + std::to_string(s));
      }
      procs.push_back(b.build());
    }

    // Starter injects g_0 (paired with K_0's receive above; for j==0 the
    // incoming token symbol is g0 shared with this starter).
    procs.push_back(FspBuilder(alphabet, "Start").trans("s0", sym_token(0), "s1").build());
  }
};

}  // namespace

GadgetNetwork thm1_case2_collab_gadget(const Cnf& f) {
  require_three_cnf(f);
  Case2Parts parts;
  parts.build(f);
  std::size_t m = f.clauses.size();
  Fsp end = FspBuilder(parts.alphabet, "End")
                .trans("e0", Case2Parts::sym_token(m), "e1")
                .build();
  std::vector<Fsp> procs = std::move(parts.procs);
  std::size_t distinguished = procs.size();
  procs.push_back(std::move(end));
  return {Network(parts.alphabet, std::move(procs)), distinguished};
}

GadgetNetwork thm1_case2_blocking_gadget(const Cnf& f) {
  require_three_cnf(f);
  Case2Parts parts;
  parts.build(f);
  std::size_t m = f.clauses.size();
  // End': may bail out to a safe leaf, or accept the token and then demand
  // a handshake the refuser never grants — the only way End' blocks.
  Fsp end = FspBuilder(parts.alphabet, "End")
                .trans("e0", Case2Parts::sym_token(m), "e1")
                .trans("e0", "tau", "safe")
                .trans("e1", "blocked_want", "e2")
                .build();
  Fsp refuser = [&] {
    FspBuilder b(parts.alphabet, "Refuser");
    b.state("r0");
    b.action("blocked_want");
    return b.build();
  }();
  std::vector<Fsp> procs = std::move(parts.procs);
  std::size_t distinguished = procs.size();
  procs.push_back(std::move(end));
  procs.push_back(std::move(refuser));
  return {Network(parts.alphabet, std::move(procs)), distinguished};
}

}  // namespace ccfsp
