#include "reductions/cnf.hpp"

#include <set>

namespace ccfsp {

std::string Cnf::to_string() const {
  std::string out;
  for (std::size_t c = 0; c < clauses.size(); ++c) {
    if (c) out += " & ";
    out += "(";
    for (std::size_t l = 0; l < clauses[c].size(); ++l) {
      if (l) out += " | ";
      if (clauses[c][l].negated) out += "~";
      out += "x" + std::to_string(clauses[c][l].var + 1);
    }
    out += ")";
  }
  return out;
}

Cnf to_three_sat(const Cnf& f) {
  Cnf out;
  out.num_vars = f.num_vars;
  for (const Clause& c : f.clauses) {
    if (c.empty()) {
      // An empty clause is unsatisfiable; encode as (y) & (~y) over a fresh var.
      std::uint32_t y = out.num_vars++;
      out.clauses.push_back({{y, false}});
      out.clauses.push_back({{y, true}});
      continue;
    }
    if (c.size() <= 3) {
      Clause padded = c;
      while (padded.size() < 3) padded.push_back(c.back());
      out.clauses.push_back(std::move(padded));
      continue;
    }
    // (l1 | l2 | y1) & (~y1 | l3 | y2) & ... & (~y_{k-3} | l_{k-1} | l_k)
    std::uint32_t prev = out.num_vars++;
    out.clauses.push_back({c[0], c[1], {prev, false}});
    for (std::size_t i = 2; i + 2 < c.size(); ++i) {
      std::uint32_t next = out.num_vars++;
      out.clauses.push_back({{prev, true}, c[i], {next, false}});
      prev = next;
    }
    out.clauses.push_back({{prev, true}, c[c.size() - 2], c[c.size() - 1]});
  }
  return out;
}

bool evaluates_true(const Cnf& f, const std::vector<bool>& assignment) {
  for (const Clause& c : f.clauses) {
    bool sat = false;
    for (const Literal& l : c) {
      if (assignment[l.var] != l.negated) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

Cnf random_cnf(Rng& rng, std::uint32_t num_vars, std::uint32_t num_clauses,
               std::uint32_t clause_size) {
  Cnf f;
  f.num_vars = num_vars;
  for (std::uint32_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    std::set<std::uint32_t> used;
    while (clause.size() < clause_size && used.size() < num_vars) {
      std::uint32_t v = static_cast<std::uint32_t>(rng.below(num_vars));
      if (!used.insert(v).second) continue;
      clause.push_back({v, rng.chance(1, 2)});
    }
    f.clauses.push_back(std::move(clause));
  }
  return f;
}

}  // namespace ccfsp
