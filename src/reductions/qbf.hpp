// Quantified boolean formulas in prenex CNF plus a recursive solver — the
// oracle for the Theorem 2 gadget (S_a is PSPACE-complete by reduction from
// QBF validity).
#pragma once

#include <vector>

#include "reductions/cnf.hpp"

namespace ccfsp {

enum class Quantifier { kExists, kForAll };

struct Qbf {
  /// Quantifier prefix over variables 0 .. prefix.size()-1 in order; the
  /// matrix may only use those variables.
  std::vector<Quantifier> prefix;
  Cnf matrix;
};

/// Validity of the closed QBF, by straightforward recursion with early
/// clause evaluation. Exponential — fine for the small gadget tests.
bool solve_qbf(const Qbf& q);

/// Random QBF: random prefix (alternating-biased) over a random 3-CNF.
Qbf random_qbf(Rng& rng, std::uint32_t num_vars, std::uint32_t num_clauses);

}  // namespace ccfsp
