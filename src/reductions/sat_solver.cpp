#include "reductions/sat_solver.hpp"

#include <algorithm>

namespace ccfsp {

namespace {

enum : std::int8_t { kUnset = -1, kFalse = 0, kTrue = 1 };

struct Dpll {
  const Cnf* f;
  std::vector<std::int8_t> value;

  bool literal_true(const Literal& l) const {
    return value[l.var] != kUnset && (value[l.var] == kTrue) != l.negated;
  }
  bool literal_false(const Literal& l) const {
    return value[l.var] != kUnset && (value[l.var] == kTrue) == l.negated;
  }

  /// Unit propagation to fixpoint; false on conflict.
  bool propagate() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& c : f->clauses) {
        std::size_t unassigned = 0;
        const Literal* unit = nullptr;
        bool sat = false;
        for (const Literal& l : c) {
          if (literal_true(l)) {
            sat = true;
            break;
          }
          if (value[l.var] == kUnset) {
            ++unassigned;
            unit = &l;
          }
        }
        if (sat) continue;
        if (unassigned == 0) return false;  // conflict
        if (unassigned == 1) {
          value[unit->var] = unit->negated ? kFalse : kTrue;
          changed = true;
        }
      }
    }
    return true;
  }

  bool solve() {
    if (!propagate()) return false;

    // Pick the unset variable with the most occurrences in unsatisfied
    // clauses; if none, the formula is satisfied.
    std::vector<std::size_t> score(f->num_vars, 0);
    bool any_unset_in_open_clause = false;
    for (const Clause& c : f->clauses) {
      bool sat = std::any_of(c.begin(), c.end(), [&](const Literal& l) {
        return literal_true(l);
      });
      if (sat) continue;
      for (const Literal& l : c) {
        if (value[l.var] == kUnset) {
          ++score[l.var];
          any_unset_in_open_clause = true;
        }
      }
    }
    if (!any_unset_in_open_clause) return true;

    std::uint32_t best = 0;
    for (std::uint32_t v = 1; v < f->num_vars; ++v) {
      if (score[v] > score[best]) best = v;
    }

    std::vector<std::int8_t> saved = value;
    for (std::int8_t b : {kTrue, kFalse}) {
      value = saved;
      value[best] = b;
      if (solve()) return true;
    }
    value = saved;
    return false;
  }
};

}  // namespace

std::optional<std::vector<bool>> solve_sat(const Cnf& f) {
  Dpll d;
  d.f = &f;
  d.value.assign(f.num_vars, kUnset);
  if (!d.solve()) return std::nullopt;
  std::vector<bool> out(f.num_vars, false);
  for (std::uint32_t v = 0; v < f.num_vars; ++v) out[v] = d.value[v] == kTrue;
  return out;
}

}  // namespace ccfsp
