// A small DPLL SAT solver (unit propagation + pure literals + branching on
// the most frequent variable). This is the independent oracle the Theorem 1
// gadgets are validated against — the gadget run through the FSP engine and
// the formula run through DPLL must always agree.
#pragma once

#include <optional>
#include <vector>

#include "reductions/cnf.hpp"

namespace ccfsp {

/// A satisfying assignment, or nullopt if unsatisfiable.
std::optional<std::vector<bool>> solve_sat(const Cnf& f);

}  // namespace ccfsp
