#include "reductions/qbf.hpp"

#include <stdexcept>

namespace ccfsp {

namespace {

bool recurse(const Qbf& q, std::vector<bool>& assignment, std::size_t depth) {
  if (depth == q.prefix.size()) return evaluates_true(q.matrix, assignment);
  for (bool b : {false, true}) {
    assignment[depth] = b;
    bool sub = recurse(q, assignment, depth + 1);
    if (q.prefix[depth] == Quantifier::kExists && sub) return true;
    if (q.prefix[depth] == Quantifier::kForAll && !sub) return false;
  }
  return q.prefix[depth] == Quantifier::kForAll;
}

}  // namespace

bool solve_qbf(const Qbf& q) {
  if (q.matrix.num_vars > q.prefix.size()) {
    throw std::logic_error("solve_qbf: matrix uses unquantified variables");
  }
  std::vector<bool> assignment(q.prefix.size(), false);
  return recurse(q, assignment, 0);
}

Qbf random_qbf(Rng& rng, std::uint32_t num_vars, std::uint32_t num_clauses) {
  Qbf q;
  for (std::uint32_t v = 0; v < num_vars; ++v) {
    q.prefix.push_back(rng.chance(1, 2) ? Quantifier::kExists : Quantifier::kForAll);
  }
  q.matrix = random_cnf(rng, num_vars, num_clauses);
  return q;
}

}  // namespace ccfsp
