#include "reductions/gadget_thm2.hpp"

#include <stdexcept>

#include "fsp/builder.hpp"

namespace ccfsp {

Thm2Gadget thm2_adversity_gadget(const Qbf& q) {
  const Cnf& f = q.matrix;
  for (const Clause& c : f.clauses) {
    if (c.empty() || c.size() > 3) {
      throw std::invalid_argument("thm2_adversity_gadget: matrix must be 3-CNF");
    }
  }
  if (f.num_vars > q.prefix.size()) {
    throw std::invalid_argument("thm2_adversity_gadget: matrix uses unquantified variables");
  }

  auto alphabet = std::make_shared<Alphabet>();
  auto sym_clause = [](std::size_t j) { return "s" + std::to_string(j); };

  // Occurrences by polarity.
  std::vector<std::vector<std::size_t>> pos(q.prefix.size()), neg(q.prefix.size());
  for (std::size_t j = 0; j < f.clauses.size(); ++j) {
    for (const Literal& l : f.clauses[j]) {
      (l.negated ? neg : pos)[l.var].push_back(j);
    }
  }

  // P: one segment per quantified variable, in prefix order. A segment
  // branches on the variable's value — by P's own nondeterminism on the
  // clock action for exists, by the chooser's offer (t_i vs f_i) for
  // forall — and then emits s_j once per clause occurrence made FALSE by
  // that value. Mandatory emissions: a clause with three false literals
  // exhausts its capacity-2 counter and strands P mid-segment.
  FspBuilder p(alphabet, "P");
  auto v_state = [](std::size_t i) { return "v" + std::to_string(i); };
  p.start(v_state(0));
  for (std::size_t i = 0; i < q.prefix.size(); ++i) {
    for (bool value_true : {true, false}) {
      const auto& emits = value_true ? neg[i] : pos[i];
      std::string cur = "b" + std::to_string(i) + (value_true ? "T" : "F") + "0";
      std::string branch_action;
      if (q.prefix[i] == Quantifier::kExists) {
        branch_action = "c" + std::to_string(i);  // same label both branches: P chooses
      } else {
        branch_action = (value_true ? "t" : "f") + std::to_string(i);  // adversary chooses
      }
      p.trans(v_state(i), branch_action, cur);
      for (std::size_t k = 0; k < emits.size(); ++k) {
        std::string nxt = "b" + std::to_string(i) + (value_true ? "T" : "F") +
                          std::to_string(k + 1);
        p.trans(cur, sym_clause(emits[k]), nxt);
        cur = nxt;
      }
      // Rejoin via the next segment's entry action; the join state is
      // shared, which keeps P polynomial-size (a DAG describing 2^n paths).
      if (i + 1 < q.prefix.size()) {
        // connect to the next diamond by aliasing the tail state
        // (handled below by emitting the next branch action from `cur`).
      }
      p.trans(cur, "j" + std::to_string(i), v_state(i + 1));
    }
  }
  p.state(v_state(q.prefix.size()));

  std::vector<Fsp> procs;
  procs.push_back(p.build());

  // Clocks for the exists branches and the joins; choosers for foralls;
  // capacity-2 counters per clause.
  for (std::size_t i = 0; i < q.prefix.size(); ++i) {
    if (q.prefix[i] == Quantifier::kExists) {
      procs.push_back(FspBuilder(alphabet, "C" + std::to_string(i))
                          .trans("c0", "c" + std::to_string(i), "c1")
                          .build());
    } else {
      procs.push_back(FspBuilder(alphabet, "U" + std::to_string(i))
                          .trans("u0", "t" + std::to_string(i), "uT")
                          .trans("u0", "f" + std::to_string(i), "uF")
                          .build());
    }
    procs.push_back(FspBuilder(alphabet, "J" + std::to_string(i))
                        .trans("j0", "j" + std::to_string(i), "j1")
                        .build());
  }
  for (std::size_t j = 0; j < f.clauses.size(); ++j) {
    // Capacity |clause| - 1: the clause is falsified exactly when every one
    // of its literal occurrences goes false, i.e. on the |clause|-th
    // emission, which the counter refuses.
    FspBuilder b(alphabet, "K" + std::to_string(j));
    b.start("k0");
    for (std::size_t k = 0; k + 1 < f.clauses[j].size(); ++k) {
      b.trans("k" + std::to_string(k), sym_clause(j), "k" + std::to_string(k + 1));
    }
    if (f.clauses[j].size() == 1) b.action(sym_clause(j));
    procs.push_back(b.build());
  }

  return {Network(alphabet, std::move(procs)), 0};
}

}  // namespace ccfsp
