// Executable forms of the Theorem 1 hardness constructions (Figures 5, 6):
// formula -> network, such that a success predicate of the network equals
// satisfiability of the formula. The figures themselves are illustrations
// of two specific formulas; these builders implement the general reductions
// with the structural guarantees the theorem states:
//   case (1): C_N is a tree (a star), every process but the distinguished
//             one is an O(1) *linear* FSP, and every C_N edge carries a
//             single symbol;
//   case (2): every process is an O(1) *tree* FSP (the communication graph
//             is tightly coupled instead), single-symbol edges.
// Counts do the work on the unary edges: a clause process's capacity for
// its symbol encodes "at most two false literals" (S_c) or "exactly one
// chosen true literal" (potential blocking).
#pragma once

#include "network/network.hpp"
#include "reductions/cnf.hpp"

namespace ccfsp {

struct GadgetNetwork {
  Network net;
  std::size_t distinguished;
};

/// Limit every variable to at most 2 positive and 2 negative occurrences by
/// the standard copy-cycle construction (equisatisfiable). Keeps case (2)'s
/// variable processes O(1).
Cnf limit_occurrences(const Cnf& f);

/// Case (1): S_c(net, distinguished) == satisfiable(f). f must be 3-CNF.
GadgetNetwork thm1_case1_collab_gadget(const Cnf& f);

/// Case (1): potential blocking (= not S_u) == satisfiable(f).
GadgetNetwork thm1_case1_blocking_gadget(const Cnf& f);

/// Case (2): S_c == satisfiable(f). f must be 3-CNF with occurrences
/// already limited (use limit_occurrences).
GadgetNetwork thm1_case2_collab_gadget(const Cnf& f);

/// Case (2): potential blocking == satisfiable(f).
GadgetNetwork thm1_case2_blocking_gadget(const Cnf& f);

}  // namespace ccfsp
