// Propositional CNF machinery for the hardness constructions of Theorems 1
// and 2: representation, 3SAT normalization, and seeded random instances
// used to cross-validate the gadgets against the DPLL oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ccfsp {

struct Literal {
  std::uint32_t var;  // 0-based
  bool negated;

  bool operator==(const Literal&) const = default;
};

using Clause = std::vector<Literal>;

struct Cnf {
  std::uint32_t num_vars = 0;
  std::vector<Clause> clauses;

  std::string to_string() const;
};

/// Split long clauses into 3-literal clauses with fresh linking variables
/// (equisatisfiable); pad 1/2-literal clauses by literal repetition.
Cnf to_three_sat(const Cnf& f);

/// Evaluate under a full assignment.
bool evaluates_true(const Cnf& f, const std::vector<bool>& assignment);

/// Random k-SAT instance (clauses sampled uniformly, no tautological
/// clauses). Near clause/variable ratio 4.2 these mix sat and unsat.
Cnf random_cnf(Rng& rng, std::uint32_t num_vars, std::uint32_t num_clauses,
               std::uint32_t clause_size = 3);

}  // namespace ccfsp
