// Theorem 2's PSPACE-hardness construction (Figure 7): QBF -> network such
// that S_a(P, Q) == validity of the QBF. P plays the existential quantifiers
// (nondeterministic same-label branching), the context plays the universal
// ones (a chooser process per forall variable offers t_i or f_i at the
// adversary's pleasure), and counting clause processes — capacity 2 on a
// unary edge — make P deadlock exactly when a clause has all three literals
// false. C_N is a star around P (a tree), every other process is an O(1)
// tree FSP, and P is tau-free as the Game of Figure 4 requires.
#pragma once

#include "network/network.hpp"
#include "reductions/qbf.hpp"

namespace ccfsp {

struct Thm2Gadget {
  Network net;
  std::size_t distinguished;  // P
};

/// Matrix must be 3-CNF.
Thm2Gadget thm2_adversity_gadget(const Qbf& q);

}  // namespace ccfsp
