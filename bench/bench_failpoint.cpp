// Failpoint overhead benchmark: the tentpole's performance contract is that
// *disarmed* injection sites are invisible — the acceptance bar is <= 1%
// on the phil:12 flat global build against the committed BENCH_global.json
// flat_ms. Emits machine-readable JSON (BENCH_failpoint.json by default).
//
//   bench_failpoint [--quick] [--out PATH] [--repeat N]
//
// Reported numbers:
//   disarmed_ms      phil flat build, no failpoints armed (the shipped
//                    configuration; compare against BENCH_global.json)
//   armed_other_ms   same build while an *unrelated* site is armed — the
//                    engine's sites now take the slow path (registry lookup
//                    under a mutex) without ever firing; documents the cost
//                    of leaving stray failpoints armed in production
//   hit_disarmed_ns  ns per disarmed failpoint::hit() in a tight loop
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "network/families.hpp"
#include "success/global.hpp"
#include "util/failpoint.hpp"

using namespace ccfsp;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-N flat build time (min absorbs scheduling noise, matching how
/// BENCH_global.json's flat_ms is read).
double build_ms(const Network& net, int repeat, std::size_t* states) {
  double best = 1e18;
  for (int r = 0; r < repeat; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    GlobalMachine g = build_global(net, Budget::with_states(1u << 24), 1);
    const double ms = ms_since(t0);
    if (ms < best) best = ms;
    *states = g.num_states();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int repeat = 3;
  std::string out_path = "BENCH_failpoint.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--repeat N]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t phil = quick ? 10 : 12;
  Network net = dining_philosophers(phil);
  std::size_t states = 0;

  failpoint::disarm_all();
  const double disarmed_ms = build_ms(net, repeat, &states);

  // Arm a site the build never crosses: every compiled-in site now pays the
  // registry lookup, but nothing fires and the machine is unchanged.
  failpoint::Spec never;
  never.action = failpoint::Action::kCallback;
  never.callback = [](const char*, std::uint64_t) {};
  failpoint::arm("bench.unrelated_site", never);
  const double armed_other_ms = build_ms(net, repeat, &states);
  failpoint::disarm_all();

  // Disarmed hit() in isolation.
  constexpr std::uint64_t kHits = 200'000'000;
  auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kHits; ++i) failpoint::hit("bench.micro");
  const double hit_disarmed_ns = ms_since(t0) * 1e6 / kHits;

  const double armed_overhead_pct =
      disarmed_ms <= 0 ? 0 : (armed_other_ms - disarmed_ms) / disarmed_ms * 100.0;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const char* fmt =
      "{\n"
      "  \"bench\": \"failpoint\",\n"
      "  \"family\": \"phil\",\n"
      "  \"size\": %zu,\n"
      "  \"states\": %zu,\n"
      "  \"repeat\": %d,\n"
      "  \"disarmed_ms\": %.2f,\n"
      "  \"armed_other_ms\": %.2f,\n"
      "  \"armed_overhead_pct\": %.2f,\n"
      "  \"hit_disarmed_ns\": %.3f\n"
      "}\n";
  std::fprintf(out, fmt, phil, states, repeat, disarmed_ms, armed_other_ms, armed_overhead_pct,
               hit_disarmed_ns);
  std::fclose(out);
  std::fprintf(stderr, fmt, phil, states, repeat, disarmed_ms, armed_other_ms,
               armed_overhead_pct, hit_disarmed_ns);
  return 0;
}
