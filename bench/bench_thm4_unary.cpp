// E15 — Theorem 4: for unary-alphabet tree networks of O(1) cyclic
// processes, S_c is polynomial via binary-coded counts and fixed-dimension
// integer programming. The multiply-by-2 chain is the paper's own stress
// case: the root budget is 2^(m-2), so ANY explicit-state method needs
// ~2^(m-2) states while the count propagation stays polynomial in m (each
// step is an ILP over a constant-size machine with O(m)-bit numbers).
//
// Before the timed series, print the computed budgets — the "table" this
// experiment regenerates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "network/families.hpp"
#include "success/baseline.hpp"
#include "success/unary_sc.hpp"

namespace {

using namespace ccfsp;

void BM_UnaryPropagation(benchmark::State& state) {
  Network net = multiply_by_2_chain(static_cast<std::size_t>(state.range(0)));
  std::size_t bits = 0;
  for (auto _ : state) {
    UnaryScResult r = unary_success_collab(net, 0);
    benchmark::DoNotOptimize(r.success_collab);
    bits = r.root_budgets[0].second.count.bit_length();
  }
  state.counters["budget_bits"] = static_cast<double>(bits);
}
BENCHMARK(BM_UnaryPropagation)->DenseRange(4, 64, 10)->Unit(benchmark::kMillisecond);

void BM_ExplicitGlobalOnChain(benchmark::State& state) {
  // The exponential foil: the global machine must unroll the doubling.
  Network net = multiply_by_2_chain(static_cast<std::size_t>(state.range(0)));
  std::size_t global_states = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(success_collab_cyclic_global(net, 0));
    global_states = build_global(net).num_states();
  }
  state.counters["global_states"] = static_cast<double>(global_states);
}
BENCHMARK(BM_ExplicitGlobalOnChain)->DenseRange(4, 14, 2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E15 / Theorem 4 — multiply-by-2 chains: root budget = 2^(m-2)\n");
  std::printf("%6s  %12s  %s\n", "m", "budget_bits", "budget (decimal, truncated to 40 chars)");
  for (std::size_t m : {4, 8, 16, 32, 64, 128}) {
    ccfsp::Network net = ccfsp::multiply_by_2_chain(m);
    ccfsp::UnaryScResult r = ccfsp::unary_success_collab(net, 0);
    std::string dec = r.root_budgets[0].second.count.to_string();
    if (dec.size() > 40) dec = dec.substr(0, 40) + "...";
    std::printf("%6zu  %12zu  %s\n", m, r.root_budgets[0].second.count.bit_length(),
                dec.c_str());
  }
  std::printf("\n");

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
