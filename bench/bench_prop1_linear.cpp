// E5 — Proposition 1: for networks of linear processes all three success
// notions coincide and are decidable in O(n) time by occurrence matching.
// The series sweeps the total network size n (processes x length); expect
// near-linear growth for the matcher and product-of-sizes growth for the
// global-machine oracle on the same instances.
#include <benchmark/benchmark.h>

#include "network/generate.hpp"
#include "success/baseline.hpp"
#include "success/linear.hpp"

namespace {

using namespace ccfsp;

// Wave chains: always-live pipelines of linear processes, so the decision
// problem is non-trivially exercised at every size and the global machine
// genuinely has the interleavings to count (a random chain would deadlock
// on its first mismatched handshake and yield a one-state baseline).
void BM_LinearMatcher(benchmark::State& state) {
  std::size_t m = static_cast<std::size_t>(state.range(0));
  std::size_t rounds = static_cast<std::size_t>(state.range(1));
  Network net = wave_chain_network(m, rounds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear_network_success(net, 0));
  }
  state.counters["n_total_states"] = static_cast<double>(net.total_states());
}
BENCHMARK(BM_LinearMatcher)
    ->Args({4, 8})
    ->Args({8, 16})
    ->Args({16, 32})
    ->Args({32, 64})
    ->Args({64, 128})
    ->Args({128, 256})
    ->Unit(benchmark::kMicrosecond);

void BM_LinearViaGlobal(benchmark::State& state) {
  std::size_t m = static_cast<std::size_t>(state.range(0));
  std::size_t rounds = static_cast<std::size_t>(state.range(1));
  Network net = wave_chain_network(m, rounds);
  std::size_t global_states = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(success_collab_global(net, 0));
    GlobalMachine g = build_global(net);
    global_states = g.num_states();
  }
  state.counters["global_states"] = static_cast<double>(global_states);
}
BENCHMARK(BM_LinearViaGlobal)
    ->Args({4, 8})
    ->Args({6, 10})
    ->Args({8, 12})
    ->Args({10, 14})
    ->Unit(benchmark::kMillisecond);

void BM_RandomChainMatcher(benchmark::State& state) {
  // The original random (mostly deadlocking) chains, for contrast: the
  // matcher handles dead material just as fast.
  std::size_t m = static_cast<std::size_t>(state.range(0));
  std::size_t len = static_cast<std::size_t>(state.range(1));
  Rng rng(7000 + m * 131 + len);
  Network net = random_linear_chain_network(rng, m, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear_network_success(net, 0));
  }
}
BENCHMARK(BM_RandomChainMatcher)
    ->Args({16, 32})
    ->Args({64, 128})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
