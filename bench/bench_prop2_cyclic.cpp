// E14 — Proposition 2: the cyclic case is PSPACE-hard even for trees of
// constant-size processes, and S_a costs exponential time. The series runs
// the explicit cyclic deciders over growing trees of small cyclic
// processes and over dining-philosopher rings; the global state counter is
// the exponential witness.
#include <benchmark/benchmark.h>

#include "network/families.hpp"
#include "network/generate.hpp"
#include "success/baseline.hpp"
#include "success/cyclic.hpp"

namespace {

using namespace ccfsp;

Network make_cyclic_tree(std::size_t m) {
  Rng rng(3300 + m);
  NetworkGenOptions opt;
  opt.num_processes = m;
  opt.states_per_process = 4;
  opt.symbols_per_edge = 1;
  return random_cyclic_tree_network(rng, opt);
}

void BM_CyclicExplicitBlocking(benchmark::State& state) {
  Network net = make_cyclic_tree(static_cast<std::size_t>(state.range(0)));
  std::size_t global_states = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(potential_blocking_cyclic_global(net, 0));
    global_states = build_global(net).num_states();
  }
  state.counters["global_states"] = static_cast<double>(global_states);
}
BENCHMARK(BM_CyclicExplicitBlocking)->DenseRange(2, 9, 1)->Unit(benchmark::kMillisecond);

void BM_CyclicAdversityGame(benchmark::State& state) {
  Network net = make_cyclic_tree(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    CyclicDecision d = cyclic_decide_explicit(net, 0);
    benchmark::DoNotOptimize(d.success_adversity);
  }
}
BENCHMARK(BM_CyclicAdversityGame)->DenseRange(2, 7, 1)->Unit(benchmark::kMillisecond);

void BM_PhilosophersExplicit(benchmark::State& state) {
  Network net = dining_philosophers(static_cast<std::size_t>(state.range(0)));
  std::size_t global_states = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(potential_blocking_cyclic_global(net, 0));
    global_states = build_global(net).num_states();
  }
  state.counters["global_states"] = static_cast<double>(global_states);
}
BENCHMARK(BM_PhilosophersExplicit)->DenseRange(2, 7, 1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
