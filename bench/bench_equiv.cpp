// E12-adjacent — the cost of the equivalence checks themselves. Section 4.2
// notes that testing possibility equivalence of *cyclic* processes is
// PSPACE-complete [KS]; on trees the annotated subset construction stays
// near-linear. The series compares language / failure / possibility
// equivalence on matched tree and cyclic workloads, plus strong
// bisimulation (the cheap sound reducer the heuristic uses instead).
#include <benchmark/benchmark.h>

#include "equiv/bisim.hpp"
#include "equiv/equivalences.hpp"
#include "fsp/generate.hpp"
#include "semantics/normal_form.hpp"

namespace {

using namespace ccfsp;

struct TreePair {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  Fsp a, b;
  explicit TreePair(std::size_t n)
      : a(alphabet, "tmp"), b(alphabet, "tmp") {
    Rng rng(4000 + n);
    std::vector<ActionId> pool{alphabet->intern("x"), alphabet->intern("y")};
    TreeFspOptions opt;
    opt.num_states = n;
    opt.tau_probability = 0.25;
    a = random_tree_fsp(rng, alphabet, pool, opt, "A");
    b = poss_normal_form(a);  // equivalent by construction: worst case for the check
  }
};

void BM_PossEquivTrees(benchmark::State& state) {
  TreePair w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(possibility_equivalent(w.a, w.b));
  }
}
BENCHMARK(BM_PossEquivTrees)->RangeMultiplier(2)->Range(16, 256)->Unit(benchmark::kMicrosecond);

void BM_FailEquivTrees(benchmark::State& state) {
  TreePair w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(failure_equivalent(w.a, w.b));
  }
}
BENCHMARK(BM_FailEquivTrees)->RangeMultiplier(2)->Range(16, 256)->Unit(benchmark::kMicrosecond);

void BM_LangEquivTrees(benchmark::State& state) {
  TreePair w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(language_equivalent(w.a, w.b));
  }
}
BENCHMARK(BM_LangEquivTrees)->RangeMultiplier(2)->Range(16, 256)->Unit(benchmark::kMicrosecond);

struct CyclicPair {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  Fsp a, b;
  explicit CyclicPair(std::size_t n) : a(alphabet, "tmp"), b(alphabet, "tmp") {
    Rng rng(5000 + n);
    std::vector<ActionId> pool{alphabet->intern("x"), alphabet->intern("y")};
    a = random_cyclic_fsp(rng, alphabet, pool, n, n, "A");
    b = quotient_by_bisimulation(a);
  }
};

void BM_PossEquivCyclic(benchmark::State& state) {
  CyclicPair w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(possibility_equivalent(w.a, w.b));
  }
}
BENCHMARK(BM_PossEquivCyclic)->RangeMultiplier(2)->Range(4, 32)->Unit(benchmark::kMicrosecond);

void BM_BisimQuotientCyclic(benchmark::State& state) {
  CyclicPair w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quotient_by_bisimulation(w.a).num_states());
  }
}
BENCHMARK(BM_BisimQuotientCyclic)->RangeMultiplier(2)->Range(4, 32)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
