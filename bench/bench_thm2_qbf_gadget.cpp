// E8 — Theorem 2, Figure 7: S_a is PSPACE-complete; the game nature of
// antagonism is strictly harder than collaboration. The knowledge-set game
// solver's position count explodes with the number of quantified variables
// in the QBF gadget, while the gadget itself stays linear-size.
#include <benchmark/benchmark.h>

#include "reductions/gadget_thm2.hpp"
#include "success/game.hpp"

namespace {

using namespace ccfsp;

Qbf make_qbf(std::uint32_t vars) {
  Rng rng(777 + vars);
  Qbf q;
  // Strictly alternating prefix (worst case for the game).
  for (std::uint32_t v = 0; v < vars; ++v) {
    q.prefix.push_back(v % 2 ? Quantifier::kForAll : Quantifier::kExists);
  }
  q.matrix = random_cnf(rng, vars, vars, 3);
  return q;
}

void BM_AdversityGameOnGadget(benchmark::State& state) {
  Qbf q = make_qbf(static_cast<std::uint32_t>(state.range(0)));
  Thm2Gadget g = thm2_adversity_gadget(q);
  GameStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        success_adversity_network(g.net, g.distinguished, false, 1u << 22, &stats));
  }
  state.counters["game_positions"] = static_cast<double>(stats.positions);
  state.counters["belief_sets"] = static_cast<double>(stats.beliefs);
  state.counters["gadget_states"] = static_cast<double>(g.net.total_states());
}
BENCHMARK(BM_AdversityGameOnGadget)->DenseRange(2, 5, 1)->Unit(benchmark::kMillisecond);

void BM_QbfOracle(benchmark::State& state) {
  Qbf q = make_qbf(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_qbf(q));
  }
}
BENCHMARK(BM_QbfOracle)->DenseRange(2, 5, 1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
