// E7 — Theorem 1 case (2), Figure 6: NP-hardness with every process an
// O(1) tree FSP; the hardness now lives in the tight coupling of C_N
// (variable processes wired directly to clause processes). Same shape as
// E6: construction is linear, explicit analysis exponential in variables.
#include <benchmark/benchmark.h>

#include "reductions/gadgets_thm1.hpp"
#include "reductions/sat_solver.hpp"
#include "success/baseline.hpp"

namespace {

using namespace ccfsp;

Cnf make_formula(std::uint32_t vars) {
  Rng rng(4242 + vars);
  return limit_occurrences(random_cnf(rng, vars, vars * 2, 3));
}

/// Smaller instances for the exponential global-machine series (vars
/// clauses instead of 2*vars): the blow-up is the point, not a timeout.
Cnf make_small_formula(std::uint32_t vars) {
  Rng rng(17 + vars);
  return limit_occurrences(random_cnf(rng, vars, vars, 3));
}

void BM_GadgetConstruction(benchmark::State& state) {
  Cnf f = make_formula(static_cast<std::uint32_t>(state.range(0)));
  std::size_t net_size = 0, max_proc = 0;
  for (auto _ : state) {
    GadgetNetwork g = thm1_case2_collab_gadget(f);
    benchmark::DoNotOptimize(g.distinguished);
    net_size = g.net.size();
    max_proc = 0;
    for (std::size_t i = 0; i < g.net.size(); ++i) {
      max_proc = std::max(max_proc, g.net.process(i).num_states());
    }
  }
  state.counters["processes"] = static_cast<double>(net_size);
  state.counters["max_process_states"] = static_cast<double>(max_proc);
}
BENCHMARK(BM_GadgetConstruction)->DenseRange(4, 16, 4)->Unit(benchmark::kMicrosecond);

void BM_DecideScOnGadgetGlobal(benchmark::State& state) {
  Cnf f = make_small_formula(static_cast<std::uint32_t>(state.range(0)));
  GadgetNetwork g = thm1_case2_collab_gadget(f);
  std::size_t global_states = 0;
  for (auto _ : state) {
    try {
      benchmark::DoNotOptimize(success_collab_global(g.net, g.distinguished));
      global_states = build_global(g.net).num_states();
    } catch (const std::runtime_error&) {
      // The blow-up IS the measured phenomenon: the tightly-coupled gadget
      // exceeds the 4M-state budget already at 3 variables.
      state.SkipWithError("global machine exceeds 2^22 states (exponential blow-up)");
      return;
    }
  }
  state.counters["global_states"] = static_cast<double>(global_states);
}
BENCHMARK(BM_DecideScOnGadgetGlobal)->DenseRange(2, 4, 1)->Unit(benchmark::kMillisecond);

void BM_BlockingVariant(benchmark::State& state) {
  Cnf f = make_small_formula(static_cast<std::uint32_t>(state.range(0)));
  GadgetNetwork g = thm1_case2_blocking_gadget(f);
  for (auto _ : state) {
    try {
      benchmark::DoNotOptimize(potential_blocking_global(g.net, g.distinguished));
    } catch (const std::runtime_error&) {
      state.SkipWithError("global machine exceeds 2^22 states (exponential blow-up)");
      return;
    }
  }
}
BENCHMARK(BM_BlockingVariant)->DenseRange(2, 4, 1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
