// E4 — the Game of Figure 4: knowledge-set solving cost as the context
// grows. Positions are (P-state, belief) pairs; the belief space is the
// exponential part, so the counters track both. Compare with the Lemma 5
// star evaluation (used inside the Theorem 3 pipeline) on the same
// tau-free workloads.
#include <benchmark/benchmark.h>

#include "network/generate.hpp"
#include "success/game.hpp"
#include "success/tree_pipeline.hpp"

namespace {

using namespace ccfsp;

Network make_net(std::size_t m) {
  Rng rng(2200 + m);
  NetworkGenOptions opt;
  opt.num_processes = m;
  opt.states_per_process = 5;
  opt.symbols_per_edge = 2;
  opt.tau_probability = 0.0;  // the Game requires a tau-free P
  return random_tree_network(rng, opt);
}

void BM_KnowledgeGame(benchmark::State& state) {
  Network net = make_net(static_cast<std::size_t>(state.range(0)));
  GameStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        success_adversity_network(net, 0, false, 1u << 22, &stats));
  }
  state.counters["positions"] = static_cast<double>(stats.positions);
  state.counters["beliefs"] = static_cast<double>(stats.beliefs);
}
BENCHMARK(BM_KnowledgeGame)->DenseRange(2, 8, 1)->Unit(benchmark::kMillisecond);

void BM_Lemma5StarEvaluation(benchmark::State& state) {
  Network net = make_net(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Theorem3Result r = theorem3_decide(net, 0);
    benchmark::DoNotOptimize(r.success_adversity);
  }
}
BENCHMARK(BM_Lemma5StarEvaluation)->DenseRange(2, 8, 1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
