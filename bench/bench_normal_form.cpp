// E11 — the Reduction Step (Figures 8b, 9): computing the possibility
// normal form of a (subtree) composite. The paper's claim is that the
// normal form of tree material stays linear-size in the parent process;
// the counters below report composite size vs normal-form size so the
// compression ratio is visible directly.
#include <benchmark/benchmark.h>

#include "algebra/compose.hpp"
#include "fsp/generate.hpp"
#include "semantics/normal_form.hpp"

namespace {

using namespace ccfsp;

struct Workload {
  AlphabetPtr alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> children;
  Fsp parent;

  explicit Workload(std::size_t parent_states, std::size_t num_children, std::uint64_t seed)
      : parent(alphabet, "tmp") {
    Rng rng(seed);
    std::vector<ActionId> parent_pool{alphabet->intern("up0"), alphabet->intern("up1")};
    std::vector<ActionId> all_parent = parent_pool;
    for (std::size_t c = 0; c < num_children; ++c) {
      std::vector<ActionId> child_pool{alphabet->intern("c" + std::to_string(c) + "_0"),
                                       alphabet->intern("c" + std::to_string(c) + "_1")};
      TreeFspOptions copt;
      copt.num_states = 5;
      copt.tau_probability = 0.2;
      children.push_back(random_tree_fsp(rng, alphabet, child_pool, copt,
                                         "C" + std::to_string(c)));
      all_parent.insert(all_parent.end(), child_pool.begin(), child_pool.end());
    }
    TreeFspOptions popt;
    popt.num_states = parent_states;
    popt.tau_probability = 0.15;
    parent = random_tree_fsp(rng, alphabet, all_parent, popt, "F");
  }

  Fsp composite() const {
    Fsp acc = parent;
    for (const auto& c : children) acc = compose(acc, c);
    return acc;
  }
};

void BM_ReductionStep(benchmark::State& state) {
  Workload w(static_cast<std::size_t>(state.range(0)),
             static_cast<std::size_t>(state.range(1)), 31337);
  Fsp composite = w.composite();
  std::size_t nf_states = 0;
  for (auto _ : state) {
    Fsp nf = poss_normal_form(composite);
    benchmark::DoNotOptimize(nf.num_states());
    nf_states = nf.num_states();
  }
  state.counters["composite_states"] = static_cast<double>(composite.num_states());
  state.counters["normal_form_states"] = static_cast<double>(nf_states);
}
BENCHMARK(BM_ReductionStep)
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({32, 2})
    ->Args({32, 3})
    ->Args({64, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_NormalFormOfPlainTree(benchmark::State& state) {
  auto alphabet = std::make_shared<Alphabet>();
  Rng rng(99);
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b"),
                             alphabet->intern("c")};
  TreeFspOptions opt;
  opt.num_states = static_cast<std::size_t>(state.range(0));
  opt.tau_probability = 0.25;
  Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "T");
  for (auto _ : state) {
    benchmark::DoNotOptimize(poss_normal_form(f).num_states());
  }
  state.counters["input_states"] = static_cast<double>(f.num_states());
}
BENCHMARK(BM_NormalFormOfPlainTree)->RangeMultiplier(2)->Range(16, 512)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
