// ccfspd load benchmark: an in-process daemon on an ephemeral loopback
// port, hammered by blocking clients at three offered-load tiers —
//
//   light      fewer clients than workers: nothing queues, nothing sheds
//   saturated  clients ≈ workers + queue: the queue runs full and bursty
//              arrival already sheds a fraction of requests
//   overload   clients >> admission capacity: backpressure must engage
//
// Every request is a distinct payload (a --max-states serial number keys it
// past the result cache), so the numbers measure the service path — admis-
// sion, worker dispatch, analysis, framing — not a cache loop. Emits
// machine-readable JSON (BENCH_daemon.json by default) with throughput,
// p50/p99 latency of *completed* requests, and the shed rate per tier.
//
//   bench_daemon [--quick] [--out PATH] [--check BASELINE.json]
//
// --check enforces the overload contract, machine-independently:
//   - the light tier must not shed (admission control mis-sheds otherwise);
//   - the overload tier must shed (backpressure engages; a daemon that
//     queues unboundedly instead would pass a latency gate and fail here);
//   - the within-run ratio overload_p99_ms / light_p50_ms — how much an
//     accepted request's tail degrades under overload — must stay within
//     3x of the committed baseline's ratio. Bounded degradation is the
//     graceful part of graceful degradation.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/daemon.hpp"
#include "server/service.hpp"

using namespace ccfsp::server;

namespace {

constexpr const char* kModel =
    "process P { start p1; p1 -a-> p2; p2 -b-> p3; }\n"
    "process Q { start q1; q1 -a-> q2; q2 -c-> q3; }\n"
    "process R { start r1; r1 -b-> r2; r2 -c-> r3; }\n";

struct TierResult {
  const char* name;
  unsigned clients = 0;
  std::uint64_t requests = 0;   // offered
  std::uint64_t completed = 0;  // replied with an analysis outcome
  std::uint64_t shed = 0;       // replied kOverloaded
  double elapsed_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;

  double throughput_rps() const {
    return elapsed_ms > 0 ? completed * 1000.0 / elapsed_ms : 0;
  }
  double shed_rate() const {
    return requests > 0 ? static_cast<double>(shed) / requests : 0;
  }
};

TierResult run_tier(const char* name, std::uint16_t port, unsigned clients,
                    std::uint64_t per_client, std::uint64_t serial_base) {
  TierResult result;
  result.name = name;
  result.clients = clients;
  result.requests = clients * per_client;

  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::uint64_t> completed{0}, shed{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      BlockingClient client;
      if (!client.connect("127.0.0.1", port)) return;
      latencies[c].reserve(per_client);
      for (std::uint64_t i = 0; i < per_client; ++i) {
        const std::uint64_t serial = serial_base + c * per_client + i;
        const std::string payload =
            "ANALYZE --max-states " + std::to_string(1000000 + serial) + "\n" + kModel;
        const auto r0 = std::chrono::steady_clock::now();
        if (!client.send_frame(payload)) return;
        std::string reply;
        if (!client.recv_frame(reply, 30000)) return;
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - r0)
                              .count();
        if (reply.find("\"code\": \"overloaded\"") != std::string::npos) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          completed.fetch_add(1, std::memory_order_relaxed);
          latencies[c].push_back(ms);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  result.completed = completed.load();
  result.shed = shed.load();

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    result.p50_ms = all[all.size() / 2];
    result.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  return result;
}

struct Baseline {
  double light_p50_ms = 0;
  double overload_p99_ms = 0;
};

/// Minimal scanner for the JSON this tool itself writes.
bool load_baseline(const std::string& path, Baseline* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return false;
  char line[256];
  bool have_p50 = false, have_p99 = false;
  while (std::fgets(line, sizeof line, f)) {
    have_p50 |= std::sscanf(line, " \"light_p50_ms\": %lf", &out->light_p50_ms) == 1;
    have_p99 |= std::sscanf(line, " \"overload_p99_ms\": %lf", &out->overload_p99_ms) == 1;
  }
  std::fclose(f);
  return have_p50 && have_p99;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_daemon.json";
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--check") && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--check BASELINE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  // Fixed service shape so the tiers mean the same thing on every machine:
  // 4 workers + a 16-deep queue admit at most 20 concurrent requests.
  ServiceConfig scfg;
  scfg.workers = 4;
  scfg.queue_capacity = 16;
  AnalysisService service(scfg);
  service.start();
  Daemon daemon(DaemonConfig{}, service);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "daemon start failed: %s\n", error.c_str());
    return 1;
  }
  const std::uint16_t port = daemon.port();

  const std::uint64_t per_client = quick ? 40 : 150;
  // One blocking request in flight per client: 2 clients cannot queue
  // behind 4 workers; 20 exactly fill admission; 48 must shed.
  TierResult tiers[3] = {
      run_tier("light", port, 2, per_client, 0),
      run_tier("saturated", port, 20, per_client, 1u << 20),
      run_tier("overload", port, 48, per_client, 1u << 21),
  };
  daemon.drain();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::string doc = "{\n  \"bench\": \"daemon\",\n  \"workers\": 4,\n  \"queue\": 16,\n";
  char buf[512];
  for (const TierResult& t : tiers) {
    std::snprintf(buf, sizeof buf,
                  "  \"%s_clients\": %u,\n"
                  "  \"%s_requests\": %llu,\n"
                  "  \"%s_throughput_rps\": %.1f,\n"
                  "  \"%s_p50_ms\": %.3f,\n"
                  "  \"%s_p99_ms\": %.3f,\n"
                  "  \"%s_shed_rate\": %.4f,\n",
                  t.name, t.clients, t.name, static_cast<unsigned long long>(t.requests),
                  t.name, t.throughput_rps(), t.name, t.p50_ms, t.name, t.p99_ms, t.name,
                  t.shed_rate());
    doc += buf;
  }
  std::snprintf(buf, sizeof buf, "  \"quick\": %s\n}\n", quick ? "true" : "false");
  doc += buf;
  std::fputs(doc.c_str(), out);
  std::fclose(out);
  std::fputs(doc.c_str(), stderr);

  if (!check_path.empty()) {
    bool ok = true;
    if (tiers[0].shed > 0) {
      std::fprintf(stderr, "check: light tier shed %llu requests (must be 0)\n",
                   static_cast<unsigned long long>(tiers[0].shed));
      ok = false;
    }
    if (tiers[2].shed == 0) {
      std::fprintf(stderr, "check: overload tier shed nothing — backpressure disengaged\n");
      ok = false;
    }
    Baseline committed;
    if (!load_baseline(check_path, &committed)) {
      std::fprintf(stderr, "cannot read baseline %s\n", check_path.c_str());
      return 2;
    }
    const double now =
        tiers[0].p50_ms > 0 ? tiers[2].p99_ms / tiers[0].p50_ms : 0;
    const double then = committed.light_p50_ms > 0
                            ? committed.overload_p99_ms / committed.light_p50_ms
                            : 0;
    const double regression = then > 0 ? now / then : 0;
    std::fprintf(stderr, "check: overload_p99/light_p50=%.2f committed=%.2f ratio=%.2f%s\n",
                 now, then, regression, regression > 3.0 ? "  REGRESSION" : "");
    if (regression > 3.0) ok = false;
    if (!ok) {
      std::fprintf(stderr, "check: daemon degradation contract violated vs %s\n",
                   check_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "check: within bounds of %s\n", check_path.c_str());
  }
  return 0;
}
