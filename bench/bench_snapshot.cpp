// Snapshot warm-start benchmark: is loading a persisted global machine
// actually faster than rebuilding it? The headline model is phil:12 (the
// flat-engine benchmark family); the tool times the fresh sequential flat
// build, the save, and the validated load over several repetitions, takes
// medians, and verifies on every repetition that the loaded machine is
// bit-identical to the built one (a fast wrong answer is not a win). Emits
// machine-readable JSON (BENCH_snapshot.json by default).
//
//   bench_snapshot [--quick] [--out PATH] [--check BASELINE.json]
//
// --check enforces the warm-start contract, machine-independently:
//   - the median validated load must beat the median fresh build (the whole
//     point of persisting; CRC-validating a file should never cost more
//     than re-running BFS + interning);
//   - the within-run speedup build_ms / load_ms must stay within 3x of the
//     committed baseline's speedup, catching a load path that quietly
//     degrades to rebuild-grade cost while still technically "winning".
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "network/families.hpp"
#include "snapshot/global_io.hpp"
#include "success/global.hpp"
#include "util/budget.hpp"

using namespace ccfsp;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

bool identical(const GlobalMachine& a, const GlobalMachine& b) {
  return a.width == b.width && a.words == b.words && a.tuple_words == b.tuple_words &&
         a.edge_target == b.edge_target && a.edge_action == b.edge_action &&
         a.edge_pair == b.edge_pair && a.edge_offsets == b.edge_offsets;
}

/// Minimal scanner for the JSON this tool itself writes.
bool load_baseline(const std::string& path, double* speedup) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return false;
  char line[256];
  bool have = false;
  while (std::fgets(line, sizeof line, f)) {
    have |= std::sscanf(line, " \"speedup\": %lf", speedup) == 1;
  }
  std::fclose(f);
  return have;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_snapshot.json";
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--check") && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--check BASELINE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t phil = quick ? 8 : 12;
  const int reps = quick ? 3 : 5;
  const Network net = dining_philosophers(phil);
  const std::string snap_path =
      "/tmp/ccfsp_bench_snapshot_" + std::to_string(::getpid()) + ".snap";

  std::vector<double> build_ms, save_ms, load_ms;
  std::size_t states = 0, edges = 0, file_bytes = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    const GlobalMachine built = build_global(net, Budget::unlimited(), 1);
    build_ms.push_back(ms_since(t0));
    states = built.num_states();
    edges = built.num_edges();

    t0 = std::chrono::steady_clock::now();
    std::string error;
    if (!snapshot::save_global(built, net, snap_path, &error)) {
      std::fprintf(stderr, "save failed: %s\n", error.c_str());
      return 1;
    }
    save_ms.push_back(ms_since(t0));

    t0 = std::chrono::steady_clock::now();
    snapshot::LoadError err;
    auto loaded = snapshot::load_global(snap_path, net, &err);
    load_ms.push_back(ms_since(t0));
    if (!loaded.has_value()) {
      std::fprintf(stderr, "load failed: %s\n", snapshot::to_string(err.reason));
      return 1;
    }
    if (!identical(built, *loaded)) {
      std::fprintf(stderr, "loaded machine differs from the built one\n");
      return 1;
    }
  }
  {
    std::FILE* f = std::fopen(snap_path.c_str(), "rb");
    if (f) {
      std::fseek(f, 0, SEEK_END);
      file_bytes = static_cast<std::size_t>(std::ftell(f));
      std::fclose(f);
    }
  }
  ::unlink(snap_path.c_str());

  const double build = median(build_ms), save = median(save_ms), load = median(load_ms);
  const double speedup = load > 0 ? build / load : 0;

  char buf[1024];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"snapshot\",\n"
                "  \"model\": \"phil:%zu\",\n"
                "  \"states\": %zu,\n"
                "  \"edges\": %zu,\n"
                "  \"snapshot_bytes\": %zu,\n"
                "  \"build_ms\": %.3f,\n"
                "  \"save_ms\": %.3f,\n"
                "  \"load_ms\": %.3f,\n"
                "  \"speedup\": %.2f,\n"
                "  \"quick\": %s\n"
                "}\n",
                phil, states, edges, file_bytes, build, save, load, speedup,
                quick ? "true" : "false");
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(buf, out);
  std::fclose(out);
  std::fputs(buf, stderr);

  if (!check_path.empty()) {
    bool ok = true;
    if (load >= build) {
      std::fprintf(stderr, "check: warm load (%.3f ms) does not beat fresh build (%.3f ms)\n",
                   load, build);
      ok = false;
    }
    double committed = 0;
    if (!load_baseline(check_path, &committed)) {
      std::fprintf(stderr, "cannot read baseline %s\n", check_path.c_str());
      return 2;
    }
    const double regression = committed > 0 && speedup > 0 ? committed / speedup : 0;
    std::fprintf(stderr, "check: speedup=%.2f committed=%.2f ratio=%.2f%s\n", speedup,
                 committed, regression, regression > 3.0 ? "  REGRESSION" : "");
    if (regression > 3.0) ok = false;
    if (!ok) {
      std::fprintf(stderr, "check: snapshot warm-start contract violated vs %s\n",
                   check_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "check: within bounds of %s\n", check_path.c_str());
  }
  return 0;
}
