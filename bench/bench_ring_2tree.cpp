// E10 — Figure 8a: a ring network is a 2-tree. The pipeline folds the ring
// into a path of quadratic-size composites and stays polynomial as the ring
// grows; the global machine grows with the product of all process sizes.
#include <benchmark/benchmark.h>

#include "network/generate.hpp"
#include "success/baseline.hpp"
#include "success/tree_pipeline.hpp"

namespace {

using namespace ccfsp;

Network make_ring(std::size_t m) {
  Rng rng(9000 + m);
  NetworkGenOptions opt;
  opt.num_processes = m;
  opt.states_per_process = 5;
  opt.symbols_per_edge = 1;
  opt.tau_probability = 0.1;
  return random_ring_network(rng, opt);
}

/// The Figure 8a fold: opposite pairs, quotient path, distinguished at 0.
KTreePartition fold_partition(std::size_t m) {
  KTreePartition part;
  part.parts.push_back({0});
  for (std::size_t d = 1; 2 * d <= m; ++d) {
    std::size_t a = d, b = m - d;
    if (a == b) {
      part.parts.push_back({a});
      break;
    }
    part.parts.push_back({a, b});
  }
  for (std::size_t i = 0; i + 1 < part.parts.size(); ++i) part.quotient_edges.push_back({i, i + 1});
  part.width = 2;
  return part;
}

void BM_RingPipelineFolded(benchmark::State& state) {
  std::size_t m = static_cast<std::size_t>(state.range(0));
  Network net = make_ring(m);
  KTreePartition part = fold_partition(m);
  std::size_t max_nf = 0;
  for (auto _ : state) {
    Theorem3Result r = theorem3_decide(net, 0, {}, &part);
    benchmark::DoNotOptimize(r.success_collab);
    max_nf = r.max_intermediate_states;
  }
  state.counters["max_intermediate_states"] = static_cast<double>(max_nf);
  state.counters["partition_width"] = 2;
}
BENCHMARK(BM_RingPipelineFolded)->DenseRange(4, 12, 2)->Unit(benchmark::kMillisecond);

void BM_RingGlobalBaseline(benchmark::State& state) {
  Network net = make_ring(static_cast<std::size_t>(state.range(0)));
  std::size_t global_states = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(success_collab_global(net, 0));
    global_states = build_global(net).num_states();
  }
  state.counters["global_states"] = static_cast<double>(global_states);
}
BENCHMARK(BM_RingGlobalBaseline)->DenseRange(4, 10, 2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
