// Metrics overhead benchmark: the observability layer's performance
// contract is that *disarmed* counters and spans are invisible — the
// shipped configuration (metrics off) must build phil:12 at the same speed
// as before the instrumentation landed, and an *enabled* run may only pay
// the documented per-state shard bumps. Emits machine-readable JSON
// (BENCH_metrics.json by default) consumed by the CI perf-smoke job.
//
//   bench_metrics [--quick] [--out PATH] [--repeat N] [--check BASELINE.json]
//
// Reported numbers:
//   disarmed_ms       phil flat build with metrics off (the shipped
//                     configuration; compare against BENCH_global.json)
//   enabled_ms        same build under ScopedEnable — every instrumentation
//                     site takes the shard-bump slow path
//   enabled_overhead_pct  (enabled - disarmed) / disarmed
//   add_disarmed_ns   ns per disarmed metrics::add() in a tight loop
//   span_disarmed_ns  ns per disarmed ScopedSpan construct+destruct
//
// --check is machine-independent, bench_failpoint-style: it compares the
// *within-run* ratio enabled_ms / disarmed_ms against the committed
// baseline's ratio and fails (exit 1) on a >1.5x regression — a new
// counter on a per-edge path shows up here no matter how fast the runner
// is. It also enforces the absolute disarmed contract: add_disarmed_ns
// must stay under 5 ns (a relaxed load + branch, with generous slack for
// slow CI machines).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "network/families.hpp"
#include "success/global.hpp"
#include "util/metrics.hpp"

using namespace ccfsp;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-N flat build time (min absorbs scheduling noise, matching how
/// bench_failpoint and BENCH_global.json read).
double build_ms(const Network& net, int repeat, std::size_t* states) {
  double best = 1e18;
  for (int r = 0; r < repeat; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    GlobalMachine g = build_global(net, Budget::with_states(1u << 24), 1);
    const double ms = ms_since(t0);
    if (ms < best) best = ms;
    *states = g.num_states();
  }
  return best;
}

struct Baseline {
  double disarmed_ms = 0;
  double enabled_ms = 0;
};

/// Minimal scanner for the JSON this tool itself writes.
bool load_baseline(const std::string& path, Baseline* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return false;
  char line[256];
  bool have_disarmed = false, have_enabled = false;
  while (std::fgets(line, sizeof line, f)) {
    have_disarmed |= std::sscanf(line, " \"disarmed_ms\": %lf", &out->disarmed_ms) == 1;
    have_enabled |= std::sscanf(line, " \"enabled_ms\": %lf", &out->enabled_ms) == 1;
  }
  std::fclose(f);
  return have_disarmed && have_enabled;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int repeat = 3;
  std::string out_path = "BENCH_metrics.json";
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else if (!std::strcmp(argv[i], "--check") && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--repeat N] [--check BASELINE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t phil = quick ? 10 : 12;
  Network net = dining_philosophers(phil);
  std::size_t states = 0;

  const double disarmed_ms = build_ms(net, repeat, &states);

  double enabled_ms = 0;
  {
    metrics::ScopedEnable on;
    enabled_ms = build_ms(net, repeat, &states);
  }

  // Disarmed fast paths in isolation. The loop bodies are opaque calls into
  // ccfsp_util, so the compiler cannot hoist the enabled check out.
  constexpr std::uint64_t kOps = 200'000'000;
  auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    metrics::add(metrics::Counter::kGlobalStates);
  }
  const double add_disarmed_ns = ms_since(t0) * 1e6 / kOps;

  constexpr std::uint64_t kSpans = 50'000'000;
  t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kSpans; ++i) {
    metrics::ScopedSpan span("bench.micro");
  }
  const double span_disarmed_ns = ms_since(t0) * 1e6 / kSpans;

  const double enabled_overhead_pct =
      disarmed_ms <= 0 ? 0 : (enabled_ms - disarmed_ms) / disarmed_ms * 100.0;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const char* fmt =
      "{\n"
      "  \"bench\": \"metrics\",\n"
      "  \"family\": \"phil\",\n"
      "  \"size\": %zu,\n"
      "  \"states\": %zu,\n"
      "  \"repeat\": %d,\n"
      "  \"disarmed_ms\": %.2f,\n"
      "  \"enabled_ms\": %.2f,\n"
      "  \"enabled_overhead_pct\": %.2f,\n"
      "  \"add_disarmed_ns\": %.3f,\n"
      "  \"span_disarmed_ns\": %.3f\n"
      "}\n";
  std::fprintf(out, fmt, phil, states, repeat, disarmed_ms, enabled_ms, enabled_overhead_pct,
               add_disarmed_ns, span_disarmed_ns);
  std::fclose(out);
  std::fprintf(stderr, fmt, phil, states, repeat, disarmed_ms, enabled_ms,
               enabled_overhead_pct, add_disarmed_ns, span_disarmed_ns);

  if (!check_path.empty()) {
    Baseline committed;
    if (!load_baseline(check_path, &committed)) {
      std::fprintf(stderr, "cannot read baseline %s\n", check_path.c_str());
      return 2;
    }
    bool ok = true;
    const double now = disarmed_ms > 0 ? enabled_ms / disarmed_ms : 0;
    const double then =
        committed.disarmed_ms > 0 ? committed.enabled_ms / committed.disarmed_ms : 0;
    const double regression = then > 0 ? now / then : 0;
    std::fprintf(stderr, "check: enabled/disarmed=%.3f committed=%.3f ratio=%.2f%s\n", now,
                 then, regression, regression > 1.5 ? "  REGRESSION" : "");
    if (regression > 1.5) ok = false;
    if (add_disarmed_ns > 5.0) {
      std::fprintf(stderr, "check: disarmed add() costs %.3f ns (> 5 ns contract)\n",
                   add_disarmed_ns);
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr, "check: metrics overhead regressed vs %s\n", check_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "check: within 1.5x of %s\n", check_path.c_str());
  }
  return 0;
}
