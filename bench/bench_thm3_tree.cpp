// E9 — Theorem 3 (the headline result): on tree networks of tree processes,
// the possibility-normal-form pipeline decides S_u / S_a / S_c in polynomial
// time, while the explicit global machine grows exponentially with the
// number of processes. The two series below share workloads (same seeds):
// the pipeline's cost tracks the *sum* of process sizes, the baseline's the
// *product*. Expect the crossover almost immediately and a widening gap —
// the paper's claim is the O(n^k) bound, not a constant factor.
#include <benchmark/benchmark.h>

#include "network/generate.hpp"
#include "success/baseline.hpp"
#include "success/tree_pipeline.hpp"

namespace {

using namespace ccfsp;

Network make_net(std::size_t m) {
  Rng rng(1000 + m);
  NetworkGenOptions opt;
  opt.num_processes = m;
  opt.states_per_process = 6;
  opt.symbols_per_edge = 2;
  opt.tau_probability = 0.15;
  return random_tree_network(rng, opt);
}

/// Always-live wave trees: here the global machine has real interleavings
/// to enumerate (random nets deadlock early and stay small), so this is
/// the series where the exponential-vs-polynomial gap shows.
Network make_wave(std::size_t m) {
  Rng rng(1500 + m);
  return wave_tree_network(rng, m, /*rounds=*/3);
}

void BM_Theorem3Pipeline(benchmark::State& state) {
  Network net = make_net(static_cast<std::size_t>(state.range(0)));
  std::size_t max_nf = 0;
  for (auto _ : state) {
    Theorem3Result r = theorem3_decide(net, 0);
    benchmark::DoNotOptimize(r.success_collab);
    max_nf = r.max_normal_form_states;
  }
  state.counters["max_normal_form_states"] = static_cast<double>(max_nf);
  state.counters["network_states"] = static_cast<double>(net.total_states());
}
BENCHMARK(BM_Theorem3Pipeline)->DenseRange(2, 14, 2)->Unit(benchmark::kMillisecond);

void BM_GlobalBaseline(benchmark::State& state) {
  Network net = make_net(static_cast<std::size_t>(state.range(0)));
  std::size_t global_states = 0;
  for (auto _ : state) {
    GlobalMachine g = build_global(net);
    bool collab = false;
    for (std::uint32_t s = 0; s < g.num_states(); ++s) {
      if (g.is_stuck(s) && net.process(0).is_leaf(g.local_state(s, 0))) collab = true;
    }
    benchmark::DoNotOptimize(collab);
    global_states = g.num_states();
  }
  state.counters["global_states"] = static_cast<double>(global_states);
  state.counters["network_states"] = static_cast<double>(net.total_states());
}
BENCHMARK(BM_GlobalBaseline)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

void BM_Theorem3PipelineWave(benchmark::State& state) {
  Network net = make_wave(static_cast<std::size_t>(state.range(0)));
  std::size_t max_nf = 0;
  for (auto _ : state) {
    Theorem3Result r = theorem3_decide(net, 0);
    benchmark::DoNotOptimize(r.success_collab);
    max_nf = r.max_normal_form_states;
  }
  state.counters["max_normal_form_states"] = static_cast<double>(max_nf);
  state.counters["network_states"] = static_cast<double>(net.total_states());
}
BENCHMARK(BM_Theorem3PipelineWave)->DenseRange(3, 15, 2)->Unit(benchmark::kMillisecond);

void BM_GlobalBaselineWave(benchmark::State& state) {
  Network net = make_wave(static_cast<std::size_t>(state.range(0)));
  std::size_t global_states = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(success_collab_global(net, 0));
    global_states = build_global(net).num_states();
  }
  state.counters["global_states"] = static_cast<double>(global_states);
}
BENCHMARK(BM_GlobalBaselineWave)->DenseRange(3, 15, 2)->Unit(benchmark::kMillisecond);

// Ablation: the pipeline WITHOUT normal forms — hierarchical composition
// alone. Shows where the polynomial bound comes from (DESIGN.md E9).
void BM_PipelineNoNormalForm(benchmark::State& state) {
  Network net = make_net(static_cast<std::size_t>(state.range(0)));
  Theorem3Options opt;
  opt.use_normal_form = false;
  std::size_t max_intermediate = 0;
  for (auto _ : state) {
    Theorem3Result r = theorem3_decide(net, 0, opt);
    benchmark::DoNotOptimize(r.success_collab);
    max_intermediate = r.max_intermediate_states;
  }
  state.counters["max_intermediate_states"] = static_cast<double>(max_intermediate);
}
BENCHMARK(BM_PipelineNoNormalForm)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
