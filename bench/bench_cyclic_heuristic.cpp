// E16 — the Section 4.2 "practical heuristic": hierarchical ||' composition
// over the communication tree with sound reductions after every step.
// Ablation: bisimulation quotienting and trivial-tau compression toggled
// independently; the counter reports the largest intermediate composite, the
// quantity the reductions exist to control. The explicit decider is the
// exponential foil on the same instances.
#include <benchmark/benchmark.h>

#include "network/families.hpp"
#include "network/generate.hpp"
#include "success/cyclic.hpp"

namespace {

using namespace ccfsp;

Network make_cyclic_tree(std::size_t m) {
  Rng rng(5500 + m);
  NetworkGenOptions opt;
  opt.num_processes = m;
  opt.states_per_process = 4;
  opt.symbols_per_edge = 1;
  return random_cyclic_tree_network(rng, opt);
}

void run_heuristic(benchmark::State& state, bool bisim, bool tau) {
  Network net = make_cyclic_tree(static_cast<std::size_t>(state.range(0)));
  CyclicHeuristicOptions opt;
  opt.use_bisimulation = bisim;
  opt.use_tau_compression = tau;
  std::size_t max_intermediate = 0;
  for (auto _ : state) {
    CyclicDecision d = cyclic_decide_tree(net, 0, opt);
    benchmark::DoNotOptimize(d.potential_blocking);
    max_intermediate = d.max_intermediate_states;
  }
  state.counters["max_intermediate_states"] = static_cast<double>(max_intermediate);
}

void BM_HeuristicFull(benchmark::State& state) { run_heuristic(state, true, true); }
void BM_HeuristicNoBisim(benchmark::State& state) { run_heuristic(state, false, true); }
void BM_HeuristicNoTauCompress(benchmark::State& state) { run_heuristic(state, true, false); }
void BM_HeuristicNoReductions(benchmark::State& state) { run_heuristic(state, false, false); }

BENCHMARK(BM_HeuristicFull)->DenseRange(3, 9, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeuristicNoBisim)->DenseRange(3, 9, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeuristicNoTauCompress)->DenseRange(3, 9, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeuristicNoReductions)->DenseRange(3, 9, 2)->Unit(benchmark::kMillisecond);

void BM_ExplicitFoil(benchmark::State& state) {
  Network net = make_cyclic_tree(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    CyclicDecision d = cyclic_decide_explicit(net, 0);
    benchmark::DoNotOptimize(d.potential_blocking);
  }
}
BENCHMARK(BM_ExplicitFoil)->DenseRange(3, 9, 2)->Unit(benchmark::kMillisecond);

void BM_PhilosophersHeuristic(benchmark::State& state) {
  Network net = dining_philosophers(static_cast<std::size_t>(state.range(0)));
  std::size_t max_intermediate = 0;
  for (auto _ : state) {
    CyclicDecision d = cyclic_decide_tree(net, 0);
    benchmark::DoNotOptimize(d.potential_blocking);
    max_intermediate = d.max_intermediate_states;
  }
  state.counters["max_intermediate_states"] = static_cast<double>(max_intermediate);
}
BENCHMARK(BM_PhilosophersHeuristic)->DenseRange(2, 6, 1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
