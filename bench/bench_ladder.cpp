// The governed front door: what does resource governance cost, and what
// does it buy?
//
//   (a) ladder overhead on structured inputs — analyze() vs calling the
//       winning decider directly (Prop 1 on wave chains, Thm 3 on random
//       tree networks). The ladder adds structural classification and
//       per-rung budget forks; that should be noise.
//   (b) bounded wall-time on a blow-up — the explicit rung on wave
//       networks whose global machine grows combinatorially, run under a
//       deadline. The measured iteration time must track the deadline, not
//       the (astronomical) full exploration time.
#include <benchmark/benchmark.h>

#include <chrono>

#include "network/generate.hpp"
#include "success/analyze.hpp"
#include "success/linear.hpp"
#include "success/tree_pipeline.hpp"

namespace {

using namespace ccfsp;

void BM_LadderOnLinear(benchmark::State& state) {
  Network net = wave_chain_network(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    AnalysisReport r = analyze(net, 0);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_LadderOnLinear)->RangeMultiplier(2)->Range(4, 64)->Unit(benchmark::kMicrosecond);

void BM_DirectProp1(benchmark::State& state) {
  Network net = wave_chain_network(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear_network_success(net, 0));
  }
}
BENCHMARK(BM_DirectProp1)->RangeMultiplier(2)->Range(4, 64)->Unit(benchmark::kMicrosecond);

Network tree_net(std::size_t m) {
  Rng rng(3300 + m);
  NetworkGenOptions opt;
  opt.num_processes = m;
  opt.states_per_process = 5;
  opt.symbols_per_edge = 2;
  opt.tau_probability = 0.0;
  return random_tree_network(rng, opt);
}

void BM_LadderOnTree(benchmark::State& state) {
  Network net = tree_net(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    AnalysisReport r = analyze(net, 0);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_LadderOnTree)->DenseRange(2, 8, 2)->Unit(benchmark::kMillisecond);

void BM_DirectThm3(benchmark::State& state) {
  Network net = tree_net(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Theorem3Result r = theorem3_decide(net, 0);
    benchmark::DoNotOptimize(r.success_collab);
  }
}
BENCHMARK(BM_DirectThm3)->DenseRange(2, 8, 2)->Unit(benchmark::kMillisecond);

/// The payoff: the explicit rung on an exploding wave network, governed by
/// a deadline. range(0) is the deadline in milliseconds; wave:32:16's
/// global machine exceeds 2^22 states, so ungoverned exploration would run
/// for minutes. Iteration time tracking the deadline (within the polling
/// stride) is the whole point of the Budget layer.
void BM_ExplicitRungUnderDeadline(benchmark::State& state) {
  Rng rng(0x5eed);
  Network net = wave_tree_network(rng, 32, 16);
  std::size_t exhausted = 0;
  for (auto _ : state) {
    AnalyzeOptions opt;
    opt.budget = Budget::with_deadline(std::chrono::milliseconds(state.range(0)));
    opt.rungs = {Rung::kExplicit};
    AnalysisReport r = analyze(net, 0, opt);
    exhausted += r.status == OutcomeStatus::kBudgetExhausted;
  }
  state.counters["exhausted"] =
      static_cast<double>(exhausted) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ExplicitRungUnderDeadline)->Arg(10)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

/// Same blow-up under a state cap: cost should scale with the cap, not the
/// input, and the outcome is deterministic (see docs/robustness.md).
void BM_ExplicitRungUnderStateCap(benchmark::State& state) {
  Rng rng(0x5eed);
  Network net = wave_tree_network(rng, 16, 9);
  for (auto _ : state) {
    AnalyzeOptions opt;
    opt.budget = Budget::with_states(static_cast<std::size_t>(state.range(0)));
    opt.rungs = {Rung::kExplicit};
    AnalysisReport r = analyze(net, 0, opt);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_ExplicitRungUnderStateCap)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
