// Core state-space engine benchmark: the flat packed/CSR build (sequential
// and 4-thread) against the retained map-based reference, across the model
// families that stress different shapes of the global machine. Emits a
// machine-readable BENCH_global.json consumed by the CI perf-smoke job; see
// docs/perf.md for how to run and read it.
//
//   bench_global_core [--quick] [--out PATH] [--threads N]
//
// Per family/size it reports wall milliseconds, interned states per second,
// and retained bytes per state. The headline number is `speedup`:
// flat_states_per_sec / reference_states_per_sec at the largest size. Each
// row also carries the engine's metrics counters from an *untimed*
// instrumented flat build (timed runs stay disarmed so the numbers reflect
// the shipped configuration); see docs/observability.md for the catalogue.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "network/families.hpp"
#include "network/generate.hpp"
#include "success/global.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

using namespace ccfsp;

namespace {

struct Row {
  std::string family;
  std::size_t size = 0;
  std::size_t states = 0;
  std::size_t edges = 0;
  double reference_ms = 0;
  double flat_ms = 0;
  double parallel_ms = 0;
  double bytes_per_state = 0;
  std::string counters;  // compact JSON object, counters of one flat build
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

Network make_family(const std::string& family, std::size_t size) {
  if (family == "wave_chain") return wave_chain_network(size, 4);
  if (family == "wave_tree") {
    Rng rng(1500 + size);
    return wave_tree_network(rng, size, 6);
  }
  if (family == "ring") {
    Rng rng(2000 + size);
    NetworkGenOptions opt;
    opt.num_processes = size;
    opt.states_per_process = 8;
    opt.tau_probability = 0.0;
    return random_ring_network(rng, opt);
  }
  if (family == "phil") return dining_philosophers(size);
  throw std::invalid_argument("unknown family " + family);
}

Row run_one(const std::string& family, std::size_t size, unsigned threads) {
  Network net = make_family(family, size);
  Row row;
  row.family = family;
  row.size = size;

  auto t0 = std::chrono::steady_clock::now();
  GlobalMachine ref = build_global_reference(net, Budget::with_states(1u << 24));
  row.reference_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  GlobalMachine flat = build_global(net, Budget::with_states(1u << 24), 1);
  row.flat_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  GlobalMachine par = build_global(net, Budget::with_states(1u << 24), threads);
  row.parallel_ms = ms_since(t0);

  if (flat.tuple_data != ref.tuple_data || flat.edge_data != ref.edge_data ||
      flat.edge_offsets != ref.edge_offsets || par.tuple_data != flat.tuple_data ||
      par.edge_data != flat.edge_data) {
    std::fprintf(stderr, "FATAL: builds disagree on %s:%zu\n", family.c_str(), size);
    std::exit(1);
  }

  row.states = flat.num_states();
  row.edges = flat.num_edges();
  row.bytes_per_state =
      row.states == 0 ? 0 : static_cast<double>(flat.memory_bytes()) / row.states;

  {
    metrics::ScopedEnable on;
    build_global(net, Budget::with_states(1u << 24), 1);
    row.counters = metrics::counters_json(metrics::snapshot());
  }
  return row;
}

double per_sec(std::size_t states, double ms) { return ms <= 0 ? 0 : states / (ms / 1e3); }

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned threads = 4;
  std::string out_path = "BENCH_global.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
      if (threads == 0) threads = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--threads N]\n", argv[0]);
      return 2;
    }
  }

  // Sizes chosen so the largest full-mode instance keeps the reference busy
  // for >= 1 second — the regime the 5x acceptance bar is measured in.
  struct Plan {
    const char* family;
    std::vector<std::size_t> sizes;
    std::vector<std::size_t> quick_sizes;
  };
  const std::vector<Plan> plans = {
      {"wave_chain", {10, 12, 14}, {6}},
      {"wave_tree", {12, 16, 20}, {6}},
      {"ring", {5, 6}, {4}},
      {"phil", {10, 11, 12}, {6}},
  };

  std::vector<Row> rows;
  for (const Plan& plan : plans) {
    for (std::size_t size : (quick ? plan.quick_sizes : plan.sizes)) {
      Row row = run_one(plan.family, size, threads);
      std::printf(
          "%-10s m=%-3zu states=%-9zu ref=%9.1fms flat=%8.1fms x%zuthr=%8.1fms "
          "speedup=%5.2fx b/state=%.1f\n",
          row.family.c_str(), row.size, row.states, row.reference_ms, row.flat_ms,
          static_cast<std::size_t>(threads), row.parallel_ms,
          row.flat_ms > 0 ? row.reference_ms / row.flat_ms : 0, row.bytes_per_state);
      std::fflush(stdout);
      rows.push_back(std::move(row));
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"global_core\",\n  \"threads\": %u,\n", threads);
  std::fprintf(f, "  \"quick\": %s,\n  \"results\": [\n", quick ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"family\": \"%s\", \"size\": %zu, \"states\": %zu, \"edges\": %zu,\n"
                 "     \"reference_ms\": %.2f, \"flat_ms\": %.2f, \"parallel_ms\": %.2f,\n"
                 "     \"reference_states_per_sec\": %.0f, \"flat_states_per_sec\": %.0f,\n"
                 "     \"parallel_states_per_sec\": %.0f, \"speedup\": %.2f,\n"
                 "     \"bytes_per_state\": %.1f,\n"
                 "     \"counters\": %s}%s\n",
                 r.family.c_str(), r.size, r.states, r.edges, r.reference_ms, r.flat_ms,
                 r.parallel_ms, per_sec(r.states, r.reference_ms), per_sec(r.states, r.flat_ms),
                 per_sec(r.states, r.parallel_ms),
                 r.flat_ms > 0 ? r.reference_ms / r.flat_ms : 0, r.bytes_per_state,
                 r.counters.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
