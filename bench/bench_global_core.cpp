// Core state-space engine benchmark: the flat packed/CSR build (sequential
// and a 2/4/8-thread sweep) against the retained map-based reference, across
// the model families that stress different shapes of the global machine.
// Emits a machine-readable BENCH_global.json consumed by the CI perf-smoke
// job; see docs/perf.md for how to run and read it.
//
//   bench_global_core [--quick] [--out PATH] [--check]
//
// Per family/size it reports wall milliseconds, interned states per second,
// and retained bytes per state. Timings are interleaved best-of-N minima
// (N scales up for sub-millisecond rows), so small models report their fixed
// overhead instead of scheduler noise. The headline number is `speedup`:
// flat_states_per_sec / reference_states_per_sec. Each row also carries the
// engine's metrics counters from an *untimed* instrumented flat build (timed
// runs stay disarmed so the numbers reflect the shipped configuration); see
// docs/observability.md for the catalogue.
//
// --check turns the output into a gate:
//   - every row: flat at least as fast as the reference build;
//   - phil rows of size >= 10: flat >= 2x reference states/sec (the probe-
//     wave floor — a within-run ratio, so it holds on any machine);
//   - rows whose parallel build actually fanned out (levels_spawned > 0),
//     when the machine has more than one hardware thread: best parallel
//     throughput >= 0.9x flat.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "network/families.hpp"
#include "network/generate.hpp"
#include "success/global.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/trace.hpp"

using namespace ccfsp;

namespace {

constexpr unsigned kThreadSweep[] = {2, 4, 8};

struct Row {
  std::string family;
  std::size_t size = 0;
  std::size_t states = 0;
  std::size_t edges = 0;
  double reference_ms = 0;
  double flat_ms = 0;
  double parallel_ms[3] = {0, 0, 0};  // one per kThreadSweep entry
  std::size_t levels_spawned = 0;     // from the widest parallel build
  double bytes_per_state = 0;
  std::string counters;  // compact JSON object, counters of one flat build
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

Network make_family(const std::string& family, std::size_t size) {
  if (family == "wave_chain") return wave_chain_network(size, 4);
  if (family == "wave_tree") {
    Rng rng(1500 + size);
    return wave_tree_network(rng, size, 6);
  }
  if (family == "ring") {
    Rng rng(2000 + size);
    NetworkGenOptions opt;
    opt.num_processes = size;
    opt.states_per_process = 8;
    opt.tau_probability = 0.0;
    return random_ring_network(rng, opt);
  }
  if (family == "phil") return dining_philosophers(size);
  throw std::invalid_argument("unknown family " + family);
}

void check_identical(const GlobalMachine& a, const GlobalMachine& b, const char* what,
                     const std::string& family, std::size_t size) {
  if (a.width != b.width || a.words != b.words || a.tuple_words != b.tuple_words ||
      a.edge_offsets != b.edge_offsets || a.edge_target != b.edge_target ||
      a.edge_action != b.edge_action || a.edge_pair != b.edge_pair) {
    std::fprintf(stderr, "FATAL: %s builds disagree on %s:%zu\n", what, family.c_str(), size);
    std::exit(1);
  }
}

Row run_one(const std::string& family, std::size_t size) {
  Network net = make_family(family, size);
  Row row;
  row.family = family;
  row.size = size;
  const Budget budget = Budget::with_states(1u << 24);

  // Probe once per mode (also the cross-check builds), then time interleaved
  // repetitions and keep the minimum of each — the probe sizes the rep count
  // so sub-millisecond rows get enough samples to report their fixed
  // overhead rather than one scheduler hiccup.
  GlobalMachine ref, flat;
  GlobalMachine par[3];
  auto t0 = std::chrono::steady_clock::now();
  ref = build_global_reference(net, budget);
  double probe_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  flat = build_global(net, budget, 1);
  row.flat_ms = ms_since(t0);
  row.reference_ms = probe_ms;
  check_identical(flat, ref, "flat vs reference", family, size);
  for (std::size_t t = 0; t < 3; ++t) {
    t0 = std::chrono::steady_clock::now();
    par[t] = build_global(net, budget, kThreadSweep[t]);
    row.parallel_ms[t] = ms_since(t0);
    check_identical(par[t], flat, "parallel vs flat", family, size);
  }
  row.levels_spawned = par[2].levels_spawned;

  const double slowest = std::max(
      {row.reference_ms, row.flat_ms, row.parallel_ms[0], row.parallel_ms[1],
       row.parallel_ms[2]});
  int reps = slowest <= 0 ? 25 : static_cast<int>(200.0 / std::max(slowest, 0.01));
  reps = std::clamp(reps, 2, 25);
  for (int rep = 0; rep < reps; ++rep) {
    t0 = std::chrono::steady_clock::now();
    (void)build_global_reference(net, budget);
    row.reference_ms = std::min(row.reference_ms, ms_since(t0));
    t0 = std::chrono::steady_clock::now();
    (void)build_global(net, budget, 1);
    row.flat_ms = std::min(row.flat_ms, ms_since(t0));
    for (std::size_t t = 0; t < 3; ++t) {
      t0 = std::chrono::steady_clock::now();
      (void)build_global(net, budget, kThreadSweep[t]);
      row.parallel_ms[t] = std::min(row.parallel_ms[t], ms_since(t0));
    }
  }

  row.states = flat.num_states();
  row.edges = flat.num_edges();
  row.bytes_per_state =
      row.states == 0 ? 0 : static_cast<double>(flat.memory_bytes()) / row.states;

  {
    metrics::ScopedEnable on;
    build_global(net, budget, 1);
    row.counters = metrics::counters_json(metrics::snapshot());
  }
  return row;
}

double per_sec(std::size_t states, double ms) { return ms <= 0 ? 0 : states / (ms / 1e3); }

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string out_path = "BENCH_global.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--check] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const char* simd_path = simd::path_name(simd::active_path());

  // Sizes chosen so the largest full-mode instance keeps the reference busy
  // for >= 1 second — the regime the acceptance bars are measured in.
  struct Plan {
    const char* family;
    std::vector<std::size_t> sizes;
    std::vector<std::size_t> quick_sizes;
  };
  const std::vector<Plan> plans = {
      {"wave_chain", {10, 12, 14}, {6}},
      {"wave_tree", {12, 16, 20}, {6}},
      {"ring", {5, 6}, {4}},
      // phil:10 rides in quick mode so the 2x flat-vs-reference floor below
      // fires in CI's perf-smoke job, not just in full local runs.
      {"phil", {10, 11, 12}, {6, 10}},
  };

  std::vector<Row> rows;
  for (const Plan& plan : plans) {
    for (std::size_t size : (quick ? plan.quick_sizes : plan.sizes)) {
      Row row = run_one(plan.family, size);
      std::printf(
          "%-10s m=%-3zu states=%-9zu ref=%9.2fms flat=%8.2fms x2=%8.2fms x4=%8.2fms "
          "x8=%8.2fms speedup=%5.2fx b/state=%.1f\n",
          row.family.c_str(), row.size, row.states, row.reference_ms, row.flat_ms,
          row.parallel_ms[0], row.parallel_ms[1], row.parallel_ms[2],
          row.flat_ms > 0 ? row.reference_ms / row.flat_ms : 0, row.bytes_per_state);
      std::fflush(stdout);
      rows.push_back(std::move(row));
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"global_core\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n  \"simd\": \"%s\",\n", hw, simd_path);
  std::fprintf(f, "  \"quick\": %s,\n  \"results\": [\n", quick ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"family\": \"%s\", \"size\": %zu, \"states\": %zu, \"edges\": %zu,\n"
                 "     \"reference_ms\": %.3f, \"flat_ms\": %.3f,\n"
                 "     \"parallel_ms\": {\"2\": %.3f, \"4\": %.3f, \"8\": %.3f},\n"
                 "     \"reference_states_per_sec\": %.0f, \"flat_states_per_sec\": %.0f,\n"
                 "     \"parallel_states_per_sec\": {\"2\": %.0f, \"4\": %.0f, \"8\": %.0f},\n"
                 "     \"speedup\": %.2f, \"levels_spawned\": %zu,\n"
                 "     \"bytes_per_state\": %.1f,\n"
                 "     \"counters\": %s}%s\n",
                 r.family.c_str(), r.size, r.states, r.edges, r.reference_ms, r.flat_ms,
                 r.parallel_ms[0], r.parallel_ms[1], r.parallel_ms[2],
                 per_sec(r.states, r.reference_ms), per_sec(r.states, r.flat_ms),
                 per_sec(r.states, r.parallel_ms[0]), per_sec(r.states, r.parallel_ms[1]),
                 per_sec(r.states, r.parallel_ms[2]),
                 r.flat_ms > 0 ? r.reference_ms / r.flat_ms : 0, r.levels_spawned,
                 r.bytes_per_state, r.counters.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (simd=%s, hw_threads=%u)\n", out_path.c_str(), simd_path, hw);

  if (check) {
    int failures = 0;
    for (const Row& r : rows) {
      if (r.flat_ms > r.reference_ms) {
        std::fprintf(stderr, "CHECK FAIL: %s:%zu flat (%.3fms) slower than reference (%.3fms)\n",
                     r.family.c_str(), r.size, r.flat_ms, r.reference_ms);
        ++failures;
      }
      // Probe-wave floor: on the synchronization-heavy phil family (size >=
      // 10, where fixed overheads have amortized away) the wave-batched flat
      // build must hold at least 2x the reference throughput. A within-run
      // ratio, so the gate is machine-independent.
      if (r.family == "phil" && r.size >= 10 && r.flat_ms > r.reference_ms / 2.0) {
        std::fprintf(stderr,
                     "CHECK FAIL: %s:%zu flat (%.3fms) below 2x reference (%.3fms)\n",
                     r.family.c_str(), r.size, r.flat_ms, r.reference_ms);
        ++failures;
      }
      // The parallel bar only applies where the pool actually fanned out and
      // the machine can physically run more than one thread at once.
      if (r.levels_spawned > 0 && hw > 1) {
        const double best_par =
            std::min({r.parallel_ms[0], r.parallel_ms[1], r.parallel_ms[2]});
        if (best_par > r.flat_ms / 0.9) {
          std::fprintf(stderr,
                       "CHECK FAIL: %s:%zu best parallel (%.3fms) below 0.9x flat (%.3fms)\n",
                       r.family.c_str(), r.size, best_par, r.flat_ms);
          ++failures;
        }
      }
    }
    if (failures) {
      std::fprintf(stderr, "bench_global_core --check: %d failure(s)\n", failures);
      return 1;
    }
    std::printf("bench_global_core --check: all gates passed\n");
  }
  return 0;
}
