// Theorem 3 reduction-pipeline benchmark: the flat kernels (interned
// determinize/normal-form with incremental child folding) and the subtree
// normal-form memo against the retained pre-flat pipeline
// (use_flat_kernels = false — batch composition, reference normal forms,
// reference star DFAs), across the tree families whose subtree structure
// the memo is built for. Emits BENCH_pipeline.json for the CI perf-smoke
// job; see docs/perf.md for how to run and read it.
//
//   bench_pipeline [--quick] [--out PATH] [--check BASELINE.json]
//
// Every instance is decided three times — baseline, flat without the memo,
// flat with the memo — and the three results must agree exactly (the run
// aborts otherwise). The headline number is `speedup`: baseline_ms /
// memoized_ms per row. --check compares this run against a committed
// BENCH_pipeline.json in machine-independent units: it fails (exit 1) if
// on any common (family, size) row the kernel's time *relative to the
// baseline pipeline measured in the same run* regressed by more than 1.5x
// against the committed ratio.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "network/generate.hpp"
#include "success/tree_pipeline.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

using namespace ccfsp;

namespace {

struct Row {
  std::string family;
  std::size_t size = 0;
  double baseline_ms = 0;   // pre-flat pipeline (the oracle)
  double flat_ms = 0;       // flat kernels, memo off
  double memoized_ms = 0;   // flat kernels + subtree memo (the default)
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
  std::string counters;  // compact JSON object: counters of one untimed memoized run
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

Network make_family(const std::string& family, std::size_t size) {
  if (family == "wave_tree") {
    Rng rng(1500 + size);
    return wave_tree_network(rng, size, 6);
  }
  // Branching 6: high node degree is what separates the incremental fold
  // from batch composition (a node's children multiply their router fans
  // together in the batch pipeline), while every equal-height subtree still
  // folds to one memo entry.
  if (family == "wave_ktree") return wave_ktree_network(6, size, 6);
  if (family == "random_tree") {
    Rng rng(1000 + size);
    NetworkGenOptions opt;
    opt.num_processes = size;
    opt.states_per_process = 6;
    opt.symbols_per_edge = 2;
    opt.tau_probability = 0.15;
    return random_tree_network(rng, opt);
  }
  throw std::invalid_argument("unknown family " + family);
}

bool same_decisions(const Theorem3Result& a, const Theorem3Result& b) {
  return a.unavoidable_success == b.unavoidable_success &&
         a.success_collab == b.success_collab && a.success_adversity == b.success_adversity;
}

/// Best-of-3 for instances under 300 ms: the small rows are sub-millisecond
/// and a single sample makes the --check ratio gate noisy; the large rows
/// are stable enough (and expensive enough) to measure once.
template <typename F>
Theorem3Result time_mode(F&& decide_once, double& best_ms) {
  auto t0 = std::chrono::steady_clock::now();
  Theorem3Result result = decide_once();
  best_ms = ms_since(t0);
  for (int rep = 1; rep < 3 && best_ms < 300; ++rep) {
    t0 = std::chrono::steady_clock::now();
    decide_once();
    best_ms = std::min(best_ms, ms_since(t0));
  }
  return result;
}

Row run_one(const std::string& family, std::size_t size) {
  Network net = make_family(family, size);
  Row row;
  row.family = family;
  row.size = size;

  Theorem3Options baseline_opt;
  baseline_opt.use_flat_kernels = false;
  Theorem3Result baseline =
      time_mode([&] { return theorem3_decide(net, 0, baseline_opt); }, row.baseline_ms);

  Theorem3Options flat_opt;
  flat_opt.memoize = false;
  Theorem3Result flat =
      time_mode([&] { return theorem3_decide(net, 0, flat_opt); }, row.flat_ms);

  Theorem3Result memoized = time_mode([&] { return theorem3_decide(net, 0); }, row.memoized_ms);
  row.memo_hits = memoized.memo_hits;
  row.memo_misses = memoized.memo_misses;

  if (!same_decisions(baseline, flat) || !same_decisions(baseline, memoized)) {
    std::fprintf(stderr, "FATAL: pipeline modes disagree on %s:%zu\n", family.c_str(), size);
    std::exit(1);
  }

  // Counters come from a separate instrumented run so the timed runs above
  // measure the shipped (disarmed) configuration.
  {
    metrics::ScopedEnable on;
    theorem3_decide(net, 0);
    row.counters = metrics::counters_json(metrics::snapshot());
  }
  return row;
}

struct BaselineRow {
  std::string family;
  std::size_t size = 0;
  double baseline_ms = 0, flat_ms = 0, memoized_ms = 0;
};

/// Minimal scanner for the JSON this tool itself writes (one row per line).
std::vector<BaselineRow> load_baseline(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<BaselineRow> rows;
  char line[512];
  while (std::fgets(line, sizeof line, f)) {
    char family[64];
    BaselineRow r;
    if (std::sscanf(line,
                    " {\"family\": \"%63[^\"]\", \"size\": %zu, \"baseline_ms\": %lf, "
                    "\"flat_ms\": %lf, \"memoized_ms\": %lf",
                    family, &r.size, &r.baseline_ms, &r.flat_ms, &r.memoized_ms) == 5) {
      r.family = family;
      rows.push_back(std::move(r));
    }
  }
  std::fclose(f);
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pipeline.json";
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--check") && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--check BASELINE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  // Full sizes keep the baseline pipeline busy for hundreds of ms at the
  // top end; the quick sizes are also members of the full plan so a --check
  // against the committed full-run JSON always finds matching rows.
  struct Plan {
    const char* family;
    std::vector<std::size_t> sizes;
    std::vector<std::size_t> quick_sizes;
  };
  const std::vector<Plan> plans = {
      {"wave_tree", {40, 100, 200, 400}, {40}},
      {"wave_ktree", {43, 259, 1555}, {43}},
      {"random_tree", {40, 100, 200, 400}, {40}},
  };

  std::vector<Row> rows;
  for (const Plan& plan : plans) {
    for (std::size_t size : (quick ? plan.quick_sizes : plan.sizes)) {
      Row row = run_one(plan.family, size);
      std::printf(
          "%-11s m=%-3zu baseline=%9.1fms flat=%8.1fms memo=%8.1fms speedup=%6.2fx "
          "hits=%zu/%zu\n",
          row.family.c_str(), row.size, row.baseline_ms, row.flat_ms, row.memoized_ms,
          row.memoized_ms > 0 ? row.baseline_ms / row.memoized_ms : 0, row.memo_hits,
          row.memo_hits + row.memo_misses);
      std::fflush(stdout);
      rows.push_back(std::move(row));
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"pipeline\",\n  \"quick\": %s,\n  \"results\": [\n",
               quick ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"family\": \"%s\", \"size\": %zu, \"baseline_ms\": %.2f, "
                 "\"flat_ms\": %.2f, \"memoized_ms\": %.2f, \"speedup\": %.2f, "
                 "\"memo_hits\": %zu, \"memo_misses\": %zu,\n"
                 "     \"counters\": %s}%s\n",
                 r.family.c_str(), r.size, r.baseline_ms, r.flat_ms, r.memoized_ms,
                 r.memoized_ms > 0 ? r.baseline_ms / r.memoized_ms : 0, r.memo_hits,
                 r.memo_misses, r.counters.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!check_path.empty()) {
    const std::vector<BaselineRow> committed = load_baseline(check_path);
    bool ok = true;
    std::size_t compared = 0;
    for (const Row& r : rows) {
      for (const BaselineRow& c : committed) {
        if (c.family != r.family || c.size != r.size) continue;
        ++compared;
        // Machine-independent units: the kernel's cost relative to the
        // baseline pipeline measured in the *same* run.
        const double now = r.memoized_ms / r.baseline_ms;
        const double then = c.memoized_ms / c.baseline_ms;
        const double regression = then > 0 ? now / then : 0;
        std::printf("check %-11s m=%-3zu rel=%0.4f committed=%0.4f ratio=%0.2f%s\n",
                    r.family.c_str(), r.size, now, then, regression,
                    regression > 1.5 ? "  REGRESSION" : "");
        if (regression > 1.5) ok = false;
      }
    }
    if (compared == 0) {
      std::fprintf(stderr, "check: no common (family, size) rows with %s\n",
                   check_path.c_str());
      return 1;
    }
    if (!ok) {
      std::fprintf(stderr, "check: pipeline kernel regressed >1.5x vs %s\n",
                   check_path.c_str());
      return 1;
    }
    std::printf("check: %zu rows within 1.5x of %s\n", compared, check_path.c_str());
  }
  return 0;
}
