// E6 — Theorem 1 case (1), Figure 5: S_c is NP-complete already for star
// networks where every process but one is an O(1) linear counter. The
// gadget's *construction* is linear in the formula, but deciding S_c on it
// with the explicit global machine blows up exponentially in the number of
// variables, while the DPLL oracle (attacking the formula directly) stays
// fast on these sizes — the succinct-choices phenomenon the theorem is
// about. Both deciders agree on every instance (asserted in tests).
#include <benchmark/benchmark.h>

#include "reductions/gadgets_thm1.hpp"
#include "reductions/sat_solver.hpp"
#include "success/baseline.hpp"

namespace {

using namespace ccfsp;

Cnf make_formula(std::uint32_t vars) {
  Rng rng(42 + vars);
  return random_cnf(rng, vars, vars * 3, 3);
}

void BM_GadgetConstruction(benchmark::State& state) {
  Cnf f = make_formula(static_cast<std::uint32_t>(state.range(0)));
  std::size_t net_states = 0;
  for (auto _ : state) {
    GadgetNetwork g = thm1_case1_collab_gadget(f);
    benchmark::DoNotOptimize(g.distinguished);
    net_states = g.net.total_states();
  }
  state.counters["gadget_states"] = static_cast<double>(net_states);
}
BENCHMARK(BM_GadgetConstruction)->DenseRange(4, 20, 4)->Unit(benchmark::kMicrosecond);

void BM_DecideScOnGadgetGlobal(benchmark::State& state) {
  Cnf f = make_formula(static_cast<std::uint32_t>(state.range(0)));
  GadgetNetwork g = thm1_case1_collab_gadget(f);
  std::size_t global_states = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(success_collab_global(g.net, g.distinguished));
    global_states = build_global(g.net).num_states();
  }
  state.counters["global_states"] = static_cast<double>(global_states);
}
BENCHMARK(BM_DecideScOnGadgetGlobal)->DenseRange(4, 14, 2)->Unit(benchmark::kMillisecond);

void BM_DpllOracle(benchmark::State& state) {
  Cnf f = make_formula(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_sat(f).has_value());
  }
}
BENCHMARK(BM_DpllOracle)->DenseRange(4, 20, 4)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
