// Supporting ablation — the succinctness source behind Theorem 1 case (1)
// and Theorem 2: an acyclic (DAG) process describes exponentially many
// paths, and the annotated subset construction that canonicalizes its
// possibilities can blow up accordingly. On *trees* the same construction
// is tame. The counters report subset-automaton sizes for both families at
// matched process sizes.
#include <benchmark/benchmark.h>

#include "fsp/generate.hpp"
#include "semantics/poss_automaton.hpp"

namespace {

using namespace ccfsp;

void BM_DeterminizeTree(benchmark::State& state) {
  Rng rng(111);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  TreeFspOptions opt;
  opt.num_states = static_cast<std::size_t>(state.range(0));
  opt.tau_probability = 0.3;
  Fsp f = random_tree_fsp(rng, alphabet, pool, opt, "T");
  std::size_t dfa_states = 0;
  for (auto _ : state) {
    AnnotatedDfa dfa = annotated_determinize(f, SemanticAnnotation::kPossibilities);
    benchmark::DoNotOptimize(dfa.num_states());
    dfa_states = dfa.num_states();
  }
  state.counters["dfa_states"] = static_cast<double>(dfa_states);
}
BENCHMARK(BM_DeterminizeTree)->RangeMultiplier(2)->Range(16, 256)->Unit(benchmark::kMicrosecond);

void BM_DeterminizeDag(benchmark::State& state) {
  Rng rng(222);
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<ActionId> pool{alphabet->intern("a"), alphabet->intern("b")};
  TreeFspOptions opt;
  opt.num_states = static_cast<std::size_t>(state.range(0));
  opt.tau_probability = 0.3;
  Fsp f = random_acyclic_fsp(rng, alphabet, pool, opt, opt.num_states, "D");
  std::size_t dfa_states = 0;
  for (auto _ : state) {
    AnnotatedDfa dfa = annotated_determinize(f, SemanticAnnotation::kPossibilities);
    benchmark::DoNotOptimize(dfa.num_states());
    dfa_states = dfa.num_states();
  }
  state.counters["dfa_states"] = static_cast<double>(dfa_states);
}
BENCHMARK(BM_DeterminizeDag)->RangeMultiplier(2)->Range(16, 256)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
