// Liveness of a token-passing ring (a 2-tree network of cyclic processes):
// no station can ever be blocked, every station keeps moving forever, and
// the analysis certifies it both explicitly and through the hierarchical
// heuristic — plus the Theorem 4 unary machinery, since each ring edge
// carries exactly one symbol.
#include <cstdio>
#include <cstdlib>

#include "network/families.hpp"
#include "success/cyclic.hpp"

using namespace ccfsp;

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 5;
  if (n < 2) {
    std::fprintf(stderr, "usage: %s [stations >= 2]\n", argv[0]);
    return 1;
  }
  Network net = token_ring(n);
  std::printf("token_ring(%zu): ring C_N, every process a 2-state cyclic FSP\n", n);

  bool all_live = true;
  for (std::size_t i = 0; i < net.size(); ++i) {
    CyclicDecision d = cyclic_decide_explicit(net, i);
    bool live = !d.potential_blocking && d.success_collab &&
                d.success_adversity.value_or(false);
    std::printf("  station %zu: blocking=%s  S_c=%s  S_a=%s\n", i,
                d.potential_blocking ? "yes" : "no", d.success_collab ? "yes" : "no",
                d.success_adversity ? (*d.success_adversity ? "yes" : "no") : "n/a");
    all_live &= live;
  }

  CyclicDecision heur = cyclic_decide_tree(net, 0);
  std::printf("\nheuristic (largest intermediate composite %zu states) agrees: %s\n",
              heur.max_intermediate_states,
              (!heur.potential_blocking && heur.success_collab) ? "yes" : "NO (bug!)");

  std::printf("%s\n", all_live ? "the ring is live: every station runs forever"
                               : "liveness violation found");
  return all_live ? 0 : 2;
}
