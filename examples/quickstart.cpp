// Quickstart: specify a small network in the text DSL, compose processes,
// inspect possibilities, and decide the three notions of success for a
// distinguished process — the Figure 3 example of the paper plus the
// richer variant that separates all three predicates.
#include <cstdio>

#include "fsp/parse.hpp"
#include "network/families.hpp"
#include "network/network.hpp"
#include "semantics/possibilities.hpp"
#include "success/tree_pipeline.hpp"

using namespace ccfsp;

namespace {

void report(const char* title, const Network& net, std::size_t p) {
  Theorem3Result r = theorem3_decide(net, p);
  std::printf("%s (distinguished: %s)\n", title, net.process(p).name().c_str());
  std::printf("  unavoidable success  S_u : %s\n", r.unavoidable_success ? "yes" : "no");
  if (r.success_adversity.has_value()) {
    std::printf("  success in adversity S_a : %s\n", *r.success_adversity ? "yes" : "no");
  } else {
    std::printf("  success in adversity S_a : (P has tau moves; Fig 4 game undefined)\n");
  }
  std::printf("  success w/ collab    S_c : %s\n\n", r.success_collab ? "yes" : "no");
}

}  // namespace

int main() {
  // ---- Figure 3, written in the DSL ----------------------------------
  auto alphabet = std::make_shared<Alphabet>();
  std::vector<Fsp> procs = parse_processes(R"(
    process P {    # the distinguished process: one handshake to its leaf
      start p1;
      p1 -a-> p2;
    }
    process Q {    # may cooperate on a, or silently walk away
      start q1;
      q1 -a-> q2;
      q1 -tau-> q3;
    }
  )",
                                           alphabet);
  Network fig3(alphabet, std::move(procs));

  std::printf("Possibilities of Q (Definition 4):\n");
  for (const auto& poss : possibilities_tree(fig3.process(1))) {
    std::printf("  %s\n", to_string(poss, *alphabet).c_str());
  }
  std::printf("\n");

  report("Figure 3", fig3, 0);

  // ---- the Section 3.3 example separating S_u / S_a / S_c ------------
  Network sep = success_separation_network();
  report("Section 3.3 separation example", sep, 0);

  std::printf("Communication graph of the separation example (GraphViz):\n%s\n",
              sep.to_dot().c_str());
  return 0;
}
