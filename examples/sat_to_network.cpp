// Theorem 1 live: turn a 3-CNF formula into a tree network whose
// success-with-collaboration equals satisfiability (case (1), Figure 5),
// then decide it three ways — DPLL on the formula, the explicit global
// machine on the gadget, and the Theorem 3 pipeline on the gadget — and
// print the satisfying schedule implied by the witness assignment.
#include <cstdio>

#include "reductions/gadgets_thm1.hpp"
#include "reductions/sat_solver.hpp"
#include "success/baseline.hpp"
#include "success/tree_pipeline.hpp"

using namespace ccfsp;

int main() {
  // The formula the paper illustrates Figures 5 and 6 with:
  // (x1 | ~x2 | x3) & (x1 | x2 | ~x3).
  Cnf f;
  f.num_vars = 3;
  f.clauses = {{{0, false}, {1, true}, {2, false}},
               {{0, false}, {1, false}, {2, true}}};
  std::printf("formula: %s\n\n", f.to_string().c_str());

  GadgetNetwork g = thm1_case1_collab_gadget(f);
  std::printf("gadget: %zu processes, %zu states, C_N is a %s\n", g.net.size(),
              g.net.total_states(), g.net.is_tree_network() ? "tree (a star around W)" : "??");

  auto model = solve_sat(f);
  bool by_dpll = model.has_value();
  bool by_global = success_collab_global(g.net, g.distinguished);
  bool by_pipeline = theorem3_decide(g.net, g.distinguished).success_collab;

  std::printf("\nsatisfiable, three ways:\n");
  std::printf("  DPLL on the formula          : %s\n", by_dpll ? "yes" : "no");
  std::printf("  S_c via explicit global G    : %s\n", by_global ? "yes" : "no");
  std::printf("  S_c via Theorem 3 pipeline   : %s\n", by_pipeline ? "yes" : "no");

  if (model) {
    std::printf("\nwitness assignment: ");
    for (std::uint32_t v = 0; v < f.num_vars; ++v) {
      std::printf("x%u=%s ", v + 1, (*model)[v] ? "T" : "F");
    }
    std::printf("\n(in the gadget, W's tau-diamonds take these branches and every clause\n"
                " counter stays within its capacity of 2 false literals)\n");
  }

  // An unsatisfiable sibling for contrast.
  Cnf unsat;
  unsat.num_vars = 1;
  unsat.clauses = {{{0, false}}, {{0, true}}};
  GadgetNetwork g2 = thm1_case1_collab_gadget(to_three_sat(unsat));
  std::printf("\ncontrast, x1 & ~x1: S_c on its gadget = %s (and DPLL agrees: %s)\n",
              success_collab_global(g2.net, g2.distinguished) ? "yes" : "no",
              solve_sat(unsat) ? "sat" : "unsat");
  return 0;
}
