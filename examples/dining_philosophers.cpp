// Dining philosophers as a Section 4 network: all processes cyclic, no
// leaves, no tau moves, C_N a ring of philosophers and forks. "Potential
// blocking" is precisely the classic deadlock; success-with-collaboration
// says a fair scheduler could keep everyone dining; success-in-adversity
// fails because hostile neighbors can steer into the deadlock.
#include <cstdio>
#include <cstdlib>

#include "network/families.hpp"
#include "success/cyclic.hpp"

using namespace ccfsp;

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  if (n < 2) {
    std::fprintf(stderr, "usage: %s [num_philosophers >= 2]\n", argv[0]);
    return 1;
  }
  Network net = dining_philosophers(n);
  std::printf("dining_philosophers(%zu): %zu processes, %zu states total\n", n, net.size(),
              net.total_states());

  std::printf("\n-- explicit analysis (global state space) --\n");
  CyclicDecision exact = cyclic_decide_explicit(net, 0);
  std::printf("  potential blocking (deadlock reachable): %s\n",
              exact.potential_blocking ? "yes" : "no");
  std::printf("  success with collaboration (can dine forever): %s\n",
              exact.success_collab ? "yes" : "no");
  if (exact.success_adversity.has_value()) {
    std::printf("  success in adversity (deadlock unavoidable by Phil0's wits alone): %s\n",
                *exact.success_adversity ? "yes" : "no");
  }

  std::printf("\n-- tree-structured heuristic (Section 4.2) --\n");
  CyclicDecision heur = cyclic_decide_tree(net, 0);
  std::printf("  potential blocking: %s   (largest intermediate composite: %zu states)\n",
              heur.potential_blocking ? "yes" : "no", heur.max_intermediate_states);
  std::printf("  success with collaboration: %s\n", heur.success_collab ? "yes" : "no");

  bool agree = exact.potential_blocking == heur.potential_blocking &&
               exact.success_collab == heur.success_collab;
  std::printf("\nexplicit and heuristic agree: %s\n", agree ? "yes" : "NO (bug!)");
  return agree ? 0 : 2;
}
