// ccfsp_analyze — the command-line face of the library: read a network
// specification (DSL file or stdin) or generate one, pick a distinguished
// process, and report everything the paper's theory can say about it,
// including concrete witness schedules.
//
//   ccfsp_analyze [options] [file.ccfsp]
//     --distinguished NAME   process to analyze (default: the first)
//     --cyclic               use the Section 4 (cyclic) predicates
//     --witness              print blocking / success schedules (lassos in
//                            cyclic mode)
//     --simulate N           run one random maximal schedule of N steps
//     --dot                  dump the communication graph and exit
//     --gen SPEC             generate the input instead of reading it:
//                            wave:M:R (wave tree, M processes, R rounds),
//                            chain:M:R (wave chain), phil:N (dining
//                            philosophers), mul2:M (multiply-by-2 chain)
//   Resource-governed mode (any of these switches selects it):
//     --ladder               run the graceful-degradation decider ladder
//     --timeout-ms N         wall-clock budget for the whole analysis
//     --max-states N         state budget per ladder rung
//     --rungs a,b,...        restrict/reorder the ladder (linear, unary,
//                            tree, heuristic, explicit)
//     --threads N            worker threads for the explicit global-machine
//                            rung (default 1; result is bit-identical)
//     --retries N            re-run a rung that exhausts a count budget up
//                            to N times with geometrically doubled limits
//   Observability (both switches imply --ladder):
//     --metrics-json PATH    collect engine counters/spans during the run
//                            and write the versioned observability document
//                            (schema: docs/observability.md) to PATH, or to
//                            stdout when PATH is '-'
//     --trace                print the phase-span tree (human-readable)
//                            after the ladder report
//   Persistence (all imply --ladder; see docs/robustness.md §11):
//     --save-global PATH     save the explicit rung's global machine as a
//                            checksummed snapshot after building it
//     --load-global PATH     load the global machine from a snapshot instead
//                            of building it; any validation failure degrades
//                            quietly to a fresh build (never an error)
//     --checkpoint PATH      persist periodic build checkpoints of the
//                            explicit rung (forces the sequential builder;
//                            the machine is bit-identical either way)
//     --checkpoint-interval N  checkpoint every N expanded states (default
//                            32768)
//     --resume               resume the build from an existing checkpoint at
//                            the --checkpoint path (falls back to a cold
//                            build when none validates)
//   Fault injection (testing / chaos):
//     --failpoints SPEC      arm failpoints, e.g.
//                            'interner.tuple_grow=bad_alloc@hit:2'; the
//                            CCFSP_FAILPOINTS env var is read additionally
//                            (see docs/robustness.md §6 for the grammar)
//   --version prints the build stamp (git describe + snapshot format
//   version) and exits 0.
//
//   Exit codes: 0 decided, 1 internal error, 2 usage, 3 budget exhausted
//   (including out-of-memory and interruption), 4 invalid input
//   (parse/validation errors).
//
//   SIGINT/SIGTERM set a cooperative cancel flag watched by the governed
//   ladder's budget: the in-flight analysis unwinds at its next poll, the
//   run reports budget-exhausted (cancelled) for the interrupted rung, and
//   the process exits 3 with a complete, well-formed report instead of
//   dying mid-write. A second signal restores default disposition (so a
//   third kills the process outright if the unwind itself is stuck).
//
// Example specification (see models/*.ccfsp for a library):
//   process P { start p1; p1 -a-> p2; }
//   process Q { start q1; q1 -a-> q2; q1 -tau-> q3; }
#include <signal.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "fsp/parse.hpp"
#include "network/families.hpp"
#include "network/generate.hpp"
#include "network/network.hpp"
#include "success/analyze.hpp"
#include "success/cyclic.hpp"
#include "success/simulate.hpp"
#include "success/tree_pipeline.hpp"
#include "success/witness.hpp"
#include "snapshot/persist.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"
#include "util/version.hpp"

using namespace ccfsp;

namespace {

enum ExitCode {
  kExitDecided = 0,
  kExitInternal = 1,
  kExitUsage = 2,
  kExitBudget = 3,
  kExitInvalid = 4,
};

// The interruption token: watched by the ladder budget, cancelled by the
// signal handler. CancelToken's flag is a lock-free atomic store, which is
// all a handler may touch.
CancelToken g_interrupt;

void on_interrupt(int) {
  g_interrupt.cancel();
  // One cooperative chance: the next SIGINT/SIGTERM takes the default path.
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
}

void install_interrupt_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_interrupt;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--distinguished NAME] [--cyclic] [--witness] [--dot]\n"
               "          [--simulate N] [--gen SPEC] [--ladder] [--timeout-ms N]\n"
               "          [--max-states N] [--rungs a,b,...] [--threads N]\n"
               "          [--retries N] [--metrics-json PATH] [--trace]\n"
               "          [--save-global PATH] [--load-global PATH] [--checkpoint PATH]\n"
               "          [--checkpoint-interval N] [--resume] [--version]\n"
               "          [--failpoints SPEC] [file]\n",
               argv0);
  return kExitUsage;
}

/// Strict non-negative integer parse; atol would silently turn garbage
/// into 0, i.e. "no limit" — the opposite of what a mistyped budget means.
bool parse_count(const char* s, long& out) {
  if (!s || !*s) return false;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(s, &end, 10);
  if (errno != 0 || *end != '\0' || v < 0) return false;
  out = v;
  return true;
}

int bad_number(const char* s) {
  std::fprintf(stderr, "expected a non-negative integer, got '%s'\n", s);
  return kExitUsage;
}

/// Parse "wave:M:R" style generator specs.
std::optional<Network> generate(const std::string& spec) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : spec) {
    if (c == ':') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  auto num = [&](std::size_t i) -> long {
    return i < parts.size() ? std::atol(parts[i].c_str()) : 0;
  };
  if (parts[0] == "wave" && num(1) > 0 && num(2) > 0) {
    Rng rng(0x5eed);  // fixed seed: the same spec is the same network
    return wave_tree_network(rng, static_cast<std::size_t>(num(1)),
                             static_cast<std::size_t>(num(2)));
  }
  if (parts[0] == "chain" && num(1) > 0 && num(2) > 0) {
    return wave_chain_network(static_cast<std::size_t>(num(1)),
                              static_cast<std::size_t>(num(2)));
  }
  if (parts[0] == "phil" && num(1) > 0) {
    return dining_philosophers(static_cast<std::size_t>(num(1)));
  }
  if (parts[0] == "mul2" && num(1) > 0) {
    return multiply_by_2_chain(static_cast<std::size_t>(num(1)));
  }
  return std::nullopt;
}

int run_ladder(const Network& net, std::size_t p, AnalyzeOptions& opt,
               const std::string& metrics_json, bool trace) {
  metrics::MetricsSink sink;
  if (!metrics_json.empty() || trace) opt.metrics = &sink;

  AnalysisReport report = analyze(net, p, opt);

  if (!metrics_json.empty()) {
    const std::string doc = observability_document_json(sink.result, &report);
    if (metrics_json == "-") {
      std::fputs(doc.c_str(), stdout);
    } else {
      std::ofstream out(metrics_json);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", metrics_json.c_str());
        return kExitUsage;
      }
      out << doc;
    }
  }
  if (trace) {
    const std::string tree = metrics::render_span_tree(sink.result);
    std::printf("trace:\n%s\n", tree.empty() ? "  (no spans recorded)" : tree.c_str());
  }

  std::printf("ladder:\n");
  for (const RungOutcome& r : report.rungs) {
    std::printf("  %-9s %-16s", to_string(r.rung), to_string(r.status));
    if (r.attempt > 0) std::printf(" (retry %u)", r.attempt);
    if (r.states_charged) std::printf(" [%zu states]", r.states_charged);
    if (!r.detail.empty()) std::printf(" %s", r.detail.c_str());
    std::printf("\n");
  }

  const Verdict& v = report.verdict;
  auto show = [](const char* name, const std::optional<bool>& b, const char* na) {
    if (b.has_value()) {
      std::printf("  %s : %s\n", name, *b ? "yes" : "no");
    } else {
      std::printf("  %s : %s\n", name, na);
    }
  };
  std::printf("%s predicates:\n",
              report.cyclic_semantics ? "Section 4 (cyclic)" : "Section 3 (acyclic)");
  show("S_u", v.unavoidable_success, "undetermined");
  show("S_c", v.success_collab, "undetermined");
  if (v.adversity_applicable) {
    show("S_a", v.success_adversity, "undetermined");
  } else {
    std::printf("  S_a : n/a (P has tau moves or no context)\n");
  }

  switch (report.status) {
    case OutcomeStatus::kDecided:
      std::printf("outcome: decided (rung: %s)\n",
                  report.decided_by ? to_string(*report.decided_by) : "?");
      return kExitDecided;
    case OutcomeStatus::kBudgetExhausted:
      std::printf("outcome: budget-exhausted\n");
      return kExitBudget;
    case OutcomeStatus::kUnsupported:
      std::printf("outcome: unsupported\n");
      return kExitInternal;
    case OutcomeStatus::kInvalidInput:
      std::printf("outcome: invalid-input\n");
      return kExitInvalid;
  }
  return kExitInternal;
}

}  // namespace

int main(int argc, char** argv) {
  std::string distinguished_name;
  bool cyclic = false, witness = false, dot = false, ladder = false;
  long simulate_steps = 0;
  long timeout_ms = 0;
  long max_states = 0;
  long threads = 1;
  long retries = 0;
  bool trace = false;
  bool resume = false;
  long checkpoint_interval = 1 << 15;
  std::string rungs_csv, gen_spec, failpoints_spec, metrics_json;
  std::string save_global_path, load_global_path, checkpoint_path;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--version")) {
      std::printf("%s\n", build_info_string("ccfsp_analyze").c_str());
      return 0;
    } else if (!std::strcmp(argv[i], "--distinguished") && i + 1 < argc) {
      distinguished_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--cyclic")) {
      cyclic = true;
    } else if (!std::strcmp(argv[i], "--witness")) {
      witness = true;
    } else if (!std::strcmp(argv[i], "--simulate") && i + 1 < argc) {
      if (!parse_count(argv[++i], simulate_steps)) return bad_number(argv[i]);
    } else if (!std::strcmp(argv[i], "--dot")) {
      dot = true;
    } else if (!std::strcmp(argv[i], "--ladder")) {
      ladder = true;
    } else if (!std::strcmp(argv[i], "--timeout-ms") && i + 1 < argc) {
      if (!parse_count(argv[++i], timeout_ms)) return bad_number(argv[i]);
      ladder = true;
    } else if (!std::strcmp(argv[i], "--max-states") && i + 1 < argc) {
      if (!parse_count(argv[++i], max_states)) return bad_number(argv[i]);
      ladder = true;
    } else if (!std::strcmp(argv[i], "--rungs") && i + 1 < argc) {
      rungs_csv = argv[++i];
      ladder = true;
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      if (!parse_count(argv[++i], threads) || threads == 0) return bad_number(argv[i]);
      ladder = true;
    } else if (!std::strcmp(argv[i], "--retries") && i + 1 < argc) {
      if (!parse_count(argv[++i], retries)) return bad_number(argv[i]);
      ladder = true;
    } else if (!std::strcmp(argv[i], "--metrics-json") && i + 1 < argc) {
      metrics_json = argv[++i];
      ladder = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace = true;
      ladder = true;
    } else if (!std::strcmp(argv[i], "--save-global") && i + 1 < argc) {
      save_global_path = argv[++i];
      ladder = true;
    } else if (!std::strcmp(argv[i], "--load-global") && i + 1 < argc) {
      load_global_path = argv[++i];
      ladder = true;
    } else if (!std::strcmp(argv[i], "--checkpoint") && i + 1 < argc) {
      checkpoint_path = argv[++i];
      ladder = true;
    } else if (!std::strcmp(argv[i], "--checkpoint-interval") && i + 1 < argc) {
      if (!parse_count(argv[++i], checkpoint_interval) || checkpoint_interval == 0) {
        return bad_number(argv[i]);
      }
      ladder = true;
    } else if (!std::strcmp(argv[i], "--resume")) {
      resume = true;
      ladder = true;
    } else if (!std::strcmp(argv[i], "--failpoints") && i + 1 < argc) {
      failpoints_spec = argv[++i];
    } else if (!std::strcmp(argv[i], "--gen") && i + 1 < argc) {
      gen_spec = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }

  {
    std::string fp_error;
    if (!failpoints_spec.empty() && !failpoint::parse_and_arm(failpoints_spec, &fp_error)) {
      std::fprintf(stderr, "bad --failpoints spec: %s\n", fp_error.c_str());
      return kExitUsage;
    }
    if (!failpoint::arm_from_env(&fp_error)) {
      std::fprintf(stderr, "bad CCFSP_FAILPOINTS: %s\n", fp_error.c_str());
      return kExitUsage;
    }
  }

  try {
    std::optional<Network> generated;
    if (!gen_spec.empty()) {
      generated = generate(gen_spec);
      if (!generated) {
        std::fprintf(stderr, "bad --gen spec '%s'\n", gen_spec.c_str());
        return kExitUsage;
      }
    } else {
      std::string text;
      if (path.empty()) {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
      } else {
        std::ifstream in(path);
        if (!in) {
          std::fprintf(stderr, "cannot open %s\n", path.c_str());
          return kExitUsage;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
      }
      auto alphabet = std::make_shared<Alphabet>();
      generated.emplace(alphabet, parse_processes(text, alphabet));
    }
    Network& net = *generated;

    std::size_t p = 0;
    if (!distinguished_name.empty()) {
      bool found = false;
      for (std::size_t i = 0; i < net.size(); ++i) {
        if (net.process(i).name() == distinguished_name) {
          p = i;
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "no process named '%s'\n", distinguished_name.c_str());
        return kExitUsage;
      }
    }

    if (dot) {
      std::printf("%s", net.to_dot().c_str());
      return 0;
    }

    std::printf("network: %zu processes, %zu states, C_N %s\n", net.size(),
                net.total_states(),
                net.is_tree_network()  ? "tree"
                : net.is_ring_network() ? "ring"
                                        : "general");
    std::printf("distinguished: %s\n\n", net.process(p).name().c_str());

    if (simulate_steps > 0) {
      SimulationResult run =
          simulate_random(net, 0x5eed, static_cast<std::size_t>(simulate_steps));
      std::printf("random schedule (%zu steps):\n%s\n", run.steps.size(),
                  format_schedule(net, run).c_str());
    }

    if (resume && checkpoint_path.empty()) {
      std::fprintf(stderr, "--resume needs --checkpoint PATH\n");
      return kExitUsage;
    }

    if (ladder) {
      AnalyzeOptions opt;
      if (!save_global_path.empty() || !load_global_path.empty() ||
          !checkpoint_path.empty()) {
        snapshot::GlobalPersistOptions persist;
        persist.load_path = load_global_path;
        persist.save_path = save_global_path;
        persist.checkpoint_path = checkpoint_path;
        persist.resume = resume;
        persist.checkpoint_interval = static_cast<std::size_t>(checkpoint_interval);
        persist.note = [](const std::string& msg) {
          std::fprintf(stderr, "snapshot: %s\n", msg.c_str());
        };
        opt.global_source = snapshot::make_global_source(persist);
      }
      install_interrupt_handlers();
      opt.budget.watch(g_interrupt);
      opt.threads = static_cast<unsigned>(threads);
      opt.retries = static_cast<unsigned>(retries);
      if (timeout_ms > 0) {
        opt.budget.limit_duration(std::chrono::milliseconds(timeout_ms));
      }
      if (max_states > 0) opt.budget.limit_states(static_cast<std::size_t>(max_states));
      if (!rungs_csv.empty()) {
        std::string cur;
        auto flush = [&]() -> bool {
          if (cur.empty()) return true;
          std::optional<Rung> r = rung_from_string(cur);
          if (!r) {
            std::fprintf(stderr, "unknown rung '%s'\n", cur.c_str());
            return false;
          }
          opt.rungs.push_back(*r);
          cur.clear();
          return true;
        };
        for (char c : rungs_csv) {
          if (c == ',') {
            if (!flush()) return kExitUsage;
          } else {
            cur += c;
          }
        }
        if (!flush()) return kExitUsage;
        if (opt.rungs.empty()) return usage(argv[0]);
      }
      return run_ladder(net, p, opt, metrics_json, trace);
    }

    if (cyclic) {
      CyclicDecision d = cyclic_decide_explicit(net, p);
      std::printf("Section 4 (cyclic) predicates:\n");
      std::printf("  potential blocking : %s\n", d.potential_blocking ? "yes" : "no");
      std::printf("  S_c (runs forever with help) : %s\n", d.success_collab ? "yes" : "no");
      if (d.success_adversity.has_value()) {
        std::printf("  S_a (survives antagonism)    : %s\n",
                    *d.success_adversity ? "yes" : "no");
      }
      if (witness) {
        if (auto w = cyclic_blocking_witness(net, p)) {
          std::printf("\n%s counterexample:\n%s",
                      w->is_starvation() ? "starvation" : "deadlock",
                      format_lasso(net, *w).c_str());
        }
      }
    } else {
      Theorem3Result r = theorem3_decide(net, p);
      std::printf("Section 3 (acyclic) predicates:\n");
      std::printf("  S_u : %s\n", r.unavoidable_success ? "yes" : "no");
      if (r.success_adversity.has_value()) {
        std::printf("  S_a : %s\n", *r.success_adversity ? "yes" : "no");
      } else {
        std::printf("  S_a : n/a (P has tau moves)\n");
      }
      std::printf("  S_c : %s\n", r.success_collab ? "yes" : "no");

      if (witness) {
        if (auto w = blocking_witness(net, p)) {
          std::printf("\nblocking schedule (%zu steps):\n%s", w->steps.size(),
                      format_witness(net, *w).c_str());
        }
        if (auto w = collab_witness(net, p)) {
          std::printf("\nsuccess schedule (%zu steps):\n%s", w->steps.size(),
                      format_witness(net, *w).c_str());
        }
      }
    }
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInvalid;
  } catch (const BudgetExceeded& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitBudget;
  } catch (const std::bad_alloc&) {
    // Out-of-memory is a budget wall (the machine's), not an internal error.
    std::fprintf(stderr, "error: allocation failed (out of memory)\n");
    return kExitBudget;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInvalid;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInternal;
  }
  return 0;
}
