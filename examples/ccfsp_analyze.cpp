// ccfsp_analyze — the command-line face of the library: read a network
// specification (DSL file or stdin), pick a distinguished process, and
// report everything the paper's theory can say about it, including concrete
// witness schedules.
//
//   ccfsp_analyze [options] [file.ccfsp]
//     --distinguished NAME   process to analyze (default: the first)
//     --cyclic               use the Section 4 (cyclic) predicates
//     --witness              print blocking / success schedules (lassos in
//                            cyclic mode)
//     --simulate N           run one random maximal schedule of N steps
//     --dot                  dump the communication graph and exit
//
// Example specification (see models/*.ccfsp for a library):
//   process P { start p1; p1 -a-> p2; }
//   process Q { start q1; q1 -a-> q2; q1 -tau-> q3; }
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fsp/parse.hpp"
#include "network/network.hpp"
#include "success/cyclic.hpp"
#include "success/simulate.hpp"
#include "success/tree_pipeline.hpp"
#include "success/witness.hpp"

using namespace ccfsp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--distinguished NAME] [--cyclic] [--witness] [--dot] [file]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string distinguished_name;
  bool cyclic = false, witness = false, dot = false;
  long simulate_steps = 0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--distinguished") && i + 1 < argc) {
      distinguished_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--cyclic")) {
      cyclic = true;
    } else if (!std::strcmp(argv[i], "--witness")) {
      witness = true;
    } else if (!std::strcmp(argv[i], "--simulate") && i + 1 < argc) {
      simulate_steps = std::atol(argv[++i]);
    } else if (!std::strcmp(argv[i], "--dot")) {
      dot = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }

  std::string text;
  if (path.empty()) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  try {
    auto alphabet = std::make_shared<Alphabet>();
    Network net(alphabet, parse_processes(text, alphabet));

    std::size_t p = 0;
    if (!distinguished_name.empty()) {
      bool found = false;
      for (std::size_t i = 0; i < net.size(); ++i) {
        if (net.process(i).name() == distinguished_name) {
          p = i;
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "no process named '%s'\n", distinguished_name.c_str());
        return 2;
      }
    }

    if (dot) {
      std::printf("%s", net.to_dot().c_str());
      return 0;
    }

    std::printf("network: %zu processes, %zu states, C_N %s\n", net.size(),
                net.total_states(),
                net.is_tree_network()  ? "tree"
                : net.is_ring_network() ? "ring"
                                        : "general");
    std::printf("distinguished: %s\n\n", net.process(p).name().c_str());

    if (simulate_steps > 0) {
      SimulationResult run =
          simulate_random(net, 0x5eed, static_cast<std::size_t>(simulate_steps));
      std::printf("random schedule (%zu steps):\n%s\n", run.steps.size(),
                  format_schedule(net, run).c_str());
    }

    if (cyclic) {
      CyclicDecision d = cyclic_decide_explicit(net, p);
      std::printf("Section 4 (cyclic) predicates:\n");
      std::printf("  potential blocking : %s\n", d.potential_blocking ? "yes" : "no");
      std::printf("  S_c (runs forever with help) : %s\n", d.success_collab ? "yes" : "no");
      if (d.success_adversity.has_value()) {
        std::printf("  S_a (survives antagonism)    : %s\n",
                    *d.success_adversity ? "yes" : "no");
      }
      if (witness) {
        if (auto w = cyclic_blocking_witness(net, p)) {
          std::printf("\n%s counterexample:\n%s",
                      w->is_starvation() ? "starvation" : "deadlock",
                      format_lasso(net, *w).c_str());
        }
      }
    } else {
      Theorem3Result r = theorem3_decide(net, p);
      std::printf("Section 3 (acyclic) predicates:\n");
      std::printf("  S_u : %s\n", r.unavoidable_success ? "yes" : "no");
      if (r.success_adversity.has_value()) {
        std::printf("  S_a : %s\n", *r.success_adversity ? "yes" : "no");
      } else {
        std::printf("  S_a : n/a (P has tau moves)\n");
      }
      std::printf("  S_c : %s\n", r.success_collab ? "yes" : "no");

      if (witness) {
        if (auto w = blocking_witness(net, p)) {
          std::printf("\nblocking schedule (%zu steps):\n%s", w->steps.size(),
                      format_witness(net, *w).c_str());
        }
        if (auto w = collab_witness(net, p)) {
          std::printf("\nsuccess schedule (%zu steps):\n%s", w->steps.size(),
                      format_witness(net, *w).c_str());
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
