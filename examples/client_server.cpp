// A request/response server with N clients, built by stamping a client
// template through action renaming. The analysis tells the classic
// story: the server can always keep working (success in adversity), every
// client can be served forever under fair scheduling (S_c), but any single
// client can be starved — and the tool prints the starvation lasso: the
// cycle of rival traffic that the scheduler could repeat forever.
#include <cstdio>
#include <cstdlib>

#include "fsp/builder.hpp"
#include "fsp/rename.hpp"
#include "network/network.hpp"
#include "success/cyclic.hpp"
#include "success/witness.hpp"

using namespace ccfsp;

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 3;
  if (n < 2) {
    std::fprintf(stderr, "usage: %s [clients >= 2]\n", argv[0]);
    return 1;
  }

  auto alphabet = std::make_shared<Alphabet>();
  Fsp client_template = FspBuilder(alphabet, "ClientT")
                            .trans("idle", "req", "waiting")
                            .trans("waiting", "rsp", "idle")
                            .build();
  std::vector<Fsp> procs;
  // Server: one interaction at a time, any client's request accepted.
  {
    FspBuilder server(alphabet, "Server");
    server.start("ready");
    for (std::size_t i = 0; i < n; ++i) {
      std::string busy = "busy" + std::to_string(i);
      server.trans("ready", "req" + std::to_string(i), busy);
      server.trans(busy, "rsp" + std::to_string(i), "ready");
    }
    procs.push_back(server.build());
  }
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(rename_actions(client_template,
                                   {{"req", "req" + std::to_string(i)},
                                    {"rsp", "rsp" + std::to_string(i)}},
                                   "Client" + std::to_string(i)));
  }
  Network net(alphabet, std::move(procs));
  std::printf("client_server(%zu): star C_N around the server, all processes cyclic\n\n", n);

  CyclicDecision server_view = cyclic_decide_explicit(net, 0);
  std::printf("server:   blocking=%s  S_c=%s  S_a=%s\n",
              server_view.potential_blocking ? "yes" : "no",
              server_view.success_collab ? "yes" : "no",
              server_view.success_adversity
                  ? (*server_view.success_adversity ? "yes" : "no")
                  : "n/a");

  CyclicDecision client_view = cyclic_decide_explicit(net, 1);
  std::printf("client 0: blocking=%s  S_c=%s  S_a=%s\n\n",
              client_view.potential_blocking ? "yes" : "no",
              client_view.success_collab ? "yes" : "no",
              client_view.success_adversity
                  ? (*client_view.success_adversity ? "yes" : "no")
                  : "n/a");

  if (auto lasso = cyclic_blocking_witness(net, 1)) {
    std::printf("starvation counterexample for Client0:\n%s\n",
                format_lasso(net, *lasso).c_str());
  }

  std::printf("Reading: the server never jams and even beats an adversarial world;\n"
              "a client's liveness needs scheduler fairness, which the continuity\n"
              "rule alone does not provide — exactly the paper's no-lockout concern.\n");
  return 0;
}
