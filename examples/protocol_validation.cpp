// Protocol validation in the style the paper's introduction motivates:
// a sender transfers one message over a lossy channel to a receiver and
// waits for an acknowledgement. Version 1 has no recovery — the analysis
// finds potential blocking and no winning strategy for the sender. Version
// 2 adds a timeout-and-retransmit path; the same analysis certifies the
// sender against every channel behaviour (S_u = S_a = S_c = yes).
//
// All processes are tree FSPs and C_N is a tree (Sender - Channel -
// Receiver plus a Timer beside the Sender), so the Theorem 3 pipeline
// applies directly.
#include <cstdio>

#include "fsp/parse.hpp"
#include "network/network.hpp"
#include "success/tree_pipeline.hpp"

using namespace ccfsp;

namespace {

void analyze(const char* title, const char* spec, std::size_t sender_index) {
  auto alphabet = std::make_shared<Alphabet>();
  Network net(alphabet, parse_processes(spec, alphabet));
  Theorem3Result r = theorem3_decide(net, sender_index);
  std::printf("%s\n", title);
  std::printf("  S_u (works under every scheduling) : %s\n",
              r.unavoidable_success ? "yes" : "no");
  std::printf("  S_a (sender strategy beats any channel) : %s\n",
              r.success_adversity ? (*r.success_adversity ? "yes" : "no") : "n/a");
  std::printf("  S_c (some run completes)           : %s\n\n",
              r.success_collab ? "yes" : "no");
}

}  // namespace

int main() {
  analyze("v1: stop-and-wait over a lossy channel, no recovery", R"(
    process Sender {
      start s0;
      s0 -send-> s1;
      s1 -acks-> done;
    }
    process Channel {
      start c0;
      c0 -send-> c1;
      c1 -deliver-> c2;     # delivered...
      c1 -tau-> lost;       # ...or silently dropped
      c2 -ackr-> c3;
      c3 -acks-> c4;
      c3 -tau-> acklost;    # the ack can be dropped too
    }
    process Receiver {
      start r0;
      r0 -deliver-> r1;
      r1 -ackr-> r2;
    }
  )",
          0);

  analyze("v2: one timeout + retransmission (channel loses at most one copy)", R"(
    process Sender {
      start s0;
      s0 -send-> s1;
      s1 -acks-> done;       # normal completion
      s1 -timeout-> s2;      # impatient path
      s2 -acks-> done_late;  # the first ack raced the timeout
      s2 -send-> s3;         # retransmit
      s3 -acks-> done_retry;
    }
    process Channel {
      start c0;
      c0 -send-> c1;
      c1 -deliver-> c2;
      c1 -tau-> lost;
      lost -send-> c1r;      # accepts the retransmission
      c1r -deliver-> c2r;
      c2 -ackr-> c3;
      c2r -ackr-> c3r;
      c3 -acks-> c4;
      c3r -acks-> c4r;
    }
    process Receiver {
      start r0;
      r0 -deliver-> r1;
      r1 -ackr-> r2;
    }
    process Timer {
      start t0;
      t0 -timeout-> t1;
    }
  )",
          0);

  std::printf("The v1 defect is exactly 'potential blocking' (S_u fails, and the game of\n"
              "Figure 4 confirms the channel can force the loss); v2 is certified against\n"
              "every channel behaviour.\n");
  return 0;
}
