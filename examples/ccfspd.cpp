// ccfspd — the long-lived analysis daemon: a fault-contained service
// wrapping the decider ladder behind a length-prefixed socket protocol
// (see src/server/protocol.hpp), with admission control, load shedding,
// per-request budget isolation, watchdogged connections, shared
// charge-equivalent engine caches, and graceful drain on SIGTERM/SIGINT.
//
//   ccfspd [options]
//     --host ADDR            bind address (default 127.0.0.1)
//     --port N               port (default 0 = pick one; printed on stdout)
//     --workers N            analysis worker threads (default 4)
//     --queue N              admission queue capacity (default 64)
//     --timeout-ms N         default per-request wall-clock budget (2000)
//     --max-timeout-ms N     ceiling a request's own --timeout-ms clamps to
//     --max-states N         per-rung state cap (default 2^22)
//     --max-frame-bytes N    request frame size limit (default 1 MiB)
//     --read-timeout-ms N    idle-connection watchdog (default 5000)
//     --write-timeout-ms N   slow-client cumulative write budget (2000)
//     --wedge-grace-ms N     supervisor escalation grace (default 500)
//     --cache-dir DIR        warm-restart directory: graceful drain saves
//                            the result LRU and engine caches there as a
//                            checksummed snapshot, startup reloads whatever
//                            validates (a corrupt image is a structured
//                            cold start, never a crash)
//     --failpoints SPEC      arm failpoints (grammar: docs/robustness.md);
//                            CCFSP_FAILPOINTS is read additionally
//     --version              print the build stamp and exit 0
//
// On successful startup prints exactly one line to stdout:
//   ccfspd listening on HOST:PORT
// and serves until SIGTERM or SIGINT, then drains (stop accepting, cancel
// in-flight work cooperatively, flush every reply) and exits 0. A second
// signal during drain restores default disposition, so a third kills the
// process the classic way. Exit codes: 0 clean drain, 1 internal error,
// 2 usage.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/daemon.hpp"
#include "server/service.hpp"
#include "util/failpoint.hpp"
#include "util/version.hpp"

using namespace ccfsp;

namespace {

// Self-pipe: the handler only writes one byte; all real shutdown work runs
// on the main thread, which is parked on the read end.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // Best-effort: a full pipe means a signal is already pending.
  [[maybe_unused]] ssize_t rc = ::write(g_signal_pipe[1], &byte, 1);
}

bool parse_count(const char* s, long& out) {
  if (!s || !*s) return false;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(s, &end, 10);
  if (errno != 0 || *end != '\0' || v < 0) return false;
  out = v;
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host ADDR] [--port N] [--workers N] [--queue N]\n"
               "          [--timeout-ms N] [--max-timeout-ms N] [--max-states N]\n"
               "          [--max-frame-bytes N] [--read-timeout-ms N]\n"
               "          [--write-timeout-ms N] [--wedge-grace-ms N]\n"
               "          [--cache-dir DIR] [--failpoints SPEC] [--version]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServiceConfig service_cfg;
  server::DaemonConfig daemon_cfg;
  std::string failpoints_spec;

  for (int i = 1; i < argc; ++i) {
    long v = 0;
    auto num = [&](const char* flag) -> bool {
      if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc) return false;
      if (!parse_count(argv[++i], v)) {
        std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n", flag, argv[i]);
        std::exit(2);
      }
      return true;
    };
    if (!std::strcmp(argv[i], "--version")) {
      std::printf("%s\n", build_info_string("ccfspd").c_str());
      return 0;
    } else if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
      daemon_cfg.host = argv[++i];
    } else if (num("--port")) {
      daemon_cfg.port = static_cast<std::uint16_t>(v);
    } else if (num("--workers")) {
      service_cfg.workers = static_cast<unsigned>(v);
    } else if (num("--queue")) {
      service_cfg.queue_capacity = static_cast<std::size_t>(v);
    } else if (num("--timeout-ms")) {
      service_cfg.default_timeout_ms = static_cast<std::uint64_t>(v);
    } else if (num("--max-timeout-ms")) {
      service_cfg.max_timeout_ms = static_cast<std::uint64_t>(v);
    } else if (num("--max-states")) {
      service_cfg.max_states = static_cast<std::size_t>(v);
    } else if (num("--max-frame-bytes")) {
      daemon_cfg.max_frame_bytes = static_cast<std::size_t>(v);
    } else if (num("--read-timeout-ms")) {
      daemon_cfg.read_timeout_ms = static_cast<std::uint64_t>(v);
    } else if (num("--write-timeout-ms")) {
      daemon_cfg.write_timeout_ms = static_cast<std::uint64_t>(v);
    } else if (num("--wedge-grace-ms")) {
      service_cfg.wedge_grace_ms = static_cast<std::uint64_t>(v);
    } else if (!std::strcmp(argv[i], "--cache-dir") && i + 1 < argc) {
      service_cfg.cache_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--failpoints") && i + 1 < argc) {
      failpoints_spec = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  {
    std::string fp_error;
    if (!failpoints_spec.empty() && !failpoint::parse_and_arm(failpoints_spec, &fp_error)) {
      std::fprintf(stderr, "bad --failpoints spec: %s\n", fp_error.c_str());
      return 2;
    }
    if (!failpoint::arm_from_env(&fp_error)) {
      std::fprintf(stderr, "bad CCFSP_FAILPOINTS: %s\n", fp_error.c_str());
      return 2;
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  server::AnalysisService service(service_cfg);
  service.start();
  server::Daemon daemon(daemon_cfg, service);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "ccfspd: %s\n", error.c_str());
    return 1;
  }
  std::printf("ccfspd listening on %s:%u\n", daemon_cfg.host.c_str(),
              static_cast<unsigned>(daemon.port()));
  std::fflush(stdout);

  // Park until a signal arrives.
  char byte;
  for (;;) {
    const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
    if (n > 0) break;
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // pipe broken — treat as shutdown
  }

  // A second signal during drain falls back to default disposition: a
  // stuck drain can still be killed.
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGINT, SIG_DFL);

  std::fprintf(stderr, "ccfspd: draining\n");
  daemon.drain();
  std::fprintf(stderr, "ccfspd: drained cleanly\n");
  return 0;
}
