# Empty compiler generated dependencies file for bench_thm2_qbf_gadget.
# This may be replaced when dependencies are built.
