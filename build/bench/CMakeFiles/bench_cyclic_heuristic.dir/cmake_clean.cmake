file(REMOVE_RECURSE
  "CMakeFiles/bench_cyclic_heuristic.dir/bench_cyclic_heuristic.cpp.o"
  "CMakeFiles/bench_cyclic_heuristic.dir/bench_cyclic_heuristic.cpp.o.d"
  "bench_cyclic_heuristic"
  "bench_cyclic_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cyclic_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
