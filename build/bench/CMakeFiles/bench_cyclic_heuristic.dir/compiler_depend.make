# Empty compiler generated dependencies file for bench_cyclic_heuristic.
# This may be replaced when dependencies are built.
