file(REMOVE_RECURSE
  "CMakeFiles/bench_thm4_unary.dir/bench_thm4_unary.cpp.o"
  "CMakeFiles/bench_thm4_unary.dir/bench_thm4_unary.cpp.o.d"
  "bench_thm4_unary"
  "bench_thm4_unary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm4_unary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
