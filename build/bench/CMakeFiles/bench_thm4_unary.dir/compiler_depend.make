# Empty compiler generated dependencies file for bench_thm4_unary.
# This may be replaced when dependencies are built.
