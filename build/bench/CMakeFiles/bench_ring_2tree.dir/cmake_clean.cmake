file(REMOVE_RECURSE
  "CMakeFiles/bench_ring_2tree.dir/bench_ring_2tree.cpp.o"
  "CMakeFiles/bench_ring_2tree.dir/bench_ring_2tree.cpp.o.d"
  "bench_ring_2tree"
  "bench_ring_2tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ring_2tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
