# Empty dependencies file for bench_ring_2tree.
# This may be replaced when dependencies are built.
