# Empty compiler generated dependencies file for bench_thm1_tight_gadget.
# This may be replaced when dependencies are built.
