# Empty dependencies file for bench_thm3_tree.
# This may be replaced when dependencies are built.
