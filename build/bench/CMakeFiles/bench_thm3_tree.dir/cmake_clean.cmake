file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_tree.dir/bench_thm3_tree.cpp.o"
  "CMakeFiles/bench_thm3_tree.dir/bench_thm3_tree.cpp.o.d"
  "bench_thm3_tree"
  "bench_thm3_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
