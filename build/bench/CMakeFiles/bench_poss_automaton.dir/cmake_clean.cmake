file(REMOVE_RECURSE
  "CMakeFiles/bench_poss_automaton.dir/bench_poss_automaton.cpp.o"
  "CMakeFiles/bench_poss_automaton.dir/bench_poss_automaton.cpp.o.d"
  "bench_poss_automaton"
  "bench_poss_automaton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_poss_automaton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
