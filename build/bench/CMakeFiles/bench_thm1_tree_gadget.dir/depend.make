# Empty dependencies file for bench_thm1_tree_gadget.
# This may be replaced when dependencies are built.
