file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_tree_gadget.dir/bench_thm1_tree_gadget.cpp.o"
  "CMakeFiles/bench_thm1_tree_gadget.dir/bench_thm1_tree_gadget.cpp.o.d"
  "bench_thm1_tree_gadget"
  "bench_thm1_tree_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_tree_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
