# Empty dependencies file for bench_equiv.
# This may be replaced when dependencies are built.
