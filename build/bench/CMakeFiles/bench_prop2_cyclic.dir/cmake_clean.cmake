file(REMOVE_RECURSE
  "CMakeFiles/bench_prop2_cyclic.dir/bench_prop2_cyclic.cpp.o"
  "CMakeFiles/bench_prop2_cyclic.dir/bench_prop2_cyclic.cpp.o.d"
  "bench_prop2_cyclic"
  "bench_prop2_cyclic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop2_cyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
