# Empty dependencies file for bench_game.
# This may be replaced when dependencies are built.
