# Empty compiler generated dependencies file for bench_prop1_linear.
# This may be replaced when dependencies are built.
