file(REMOVE_RECURSE
  "CMakeFiles/bench_prop1_linear.dir/bench_prop1_linear.cpp.o"
  "CMakeFiles/bench_prop1_linear.dir/bench_prop1_linear.cpp.o.d"
  "bench_prop1_linear"
  "bench_prop1_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop1_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
