file(REMOVE_RECURSE
  "libccfsp_util.a"
)
