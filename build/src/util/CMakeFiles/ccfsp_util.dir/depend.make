# Empty dependencies file for ccfsp_util.
# This may be replaced when dependencies are built.
