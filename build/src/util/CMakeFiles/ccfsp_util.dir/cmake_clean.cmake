file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_util.dir/bitset.cpp.o"
  "CMakeFiles/ccfsp_util.dir/bitset.cpp.o.d"
  "CMakeFiles/ccfsp_util.dir/graph.cpp.o"
  "CMakeFiles/ccfsp_util.dir/graph.cpp.o.d"
  "libccfsp_util.a"
  "libccfsp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
