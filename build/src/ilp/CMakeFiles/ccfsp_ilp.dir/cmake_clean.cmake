file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_ilp.dir/ilp.cpp.o"
  "CMakeFiles/ccfsp_ilp.dir/ilp.cpp.o.d"
  "CMakeFiles/ccfsp_ilp.dir/simplex.cpp.o"
  "CMakeFiles/ccfsp_ilp.dir/simplex.cpp.o.d"
  "libccfsp_ilp.a"
  "libccfsp_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
