file(REMOVE_RECURSE
  "libccfsp_ilp.a"
)
