# Empty dependencies file for ccfsp_ilp.
# This may be replaced when dependencies are built.
