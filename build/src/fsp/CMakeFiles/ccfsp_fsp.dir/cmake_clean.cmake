file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_fsp.dir/builder.cpp.o"
  "CMakeFiles/ccfsp_fsp.dir/builder.cpp.o.d"
  "CMakeFiles/ccfsp_fsp.dir/cache.cpp.o"
  "CMakeFiles/ccfsp_fsp.dir/cache.cpp.o.d"
  "CMakeFiles/ccfsp_fsp.dir/fsp.cpp.o"
  "CMakeFiles/ccfsp_fsp.dir/fsp.cpp.o.d"
  "CMakeFiles/ccfsp_fsp.dir/generate.cpp.o"
  "CMakeFiles/ccfsp_fsp.dir/generate.cpp.o.d"
  "CMakeFiles/ccfsp_fsp.dir/parse.cpp.o"
  "CMakeFiles/ccfsp_fsp.dir/parse.cpp.o.d"
  "CMakeFiles/ccfsp_fsp.dir/rename.cpp.o"
  "CMakeFiles/ccfsp_fsp.dir/rename.cpp.o.d"
  "libccfsp_fsp.a"
  "libccfsp_fsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_fsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
