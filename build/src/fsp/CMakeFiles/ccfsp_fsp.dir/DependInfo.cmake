
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsp/builder.cpp" "src/fsp/CMakeFiles/ccfsp_fsp.dir/builder.cpp.o" "gcc" "src/fsp/CMakeFiles/ccfsp_fsp.dir/builder.cpp.o.d"
  "/root/repo/src/fsp/cache.cpp" "src/fsp/CMakeFiles/ccfsp_fsp.dir/cache.cpp.o" "gcc" "src/fsp/CMakeFiles/ccfsp_fsp.dir/cache.cpp.o.d"
  "/root/repo/src/fsp/fsp.cpp" "src/fsp/CMakeFiles/ccfsp_fsp.dir/fsp.cpp.o" "gcc" "src/fsp/CMakeFiles/ccfsp_fsp.dir/fsp.cpp.o.d"
  "/root/repo/src/fsp/generate.cpp" "src/fsp/CMakeFiles/ccfsp_fsp.dir/generate.cpp.o" "gcc" "src/fsp/CMakeFiles/ccfsp_fsp.dir/generate.cpp.o.d"
  "/root/repo/src/fsp/parse.cpp" "src/fsp/CMakeFiles/ccfsp_fsp.dir/parse.cpp.o" "gcc" "src/fsp/CMakeFiles/ccfsp_fsp.dir/parse.cpp.o.d"
  "/root/repo/src/fsp/rename.cpp" "src/fsp/CMakeFiles/ccfsp_fsp.dir/rename.cpp.o" "gcc" "src/fsp/CMakeFiles/ccfsp_fsp.dir/rename.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccfsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
