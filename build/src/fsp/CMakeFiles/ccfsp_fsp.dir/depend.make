# Empty dependencies file for ccfsp_fsp.
# This may be replaced when dependencies are built.
