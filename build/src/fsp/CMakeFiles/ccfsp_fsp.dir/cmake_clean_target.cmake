file(REMOVE_RECURSE
  "libccfsp_fsp.a"
)
