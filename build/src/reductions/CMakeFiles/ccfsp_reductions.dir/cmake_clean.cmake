file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_reductions.dir/cnf.cpp.o"
  "CMakeFiles/ccfsp_reductions.dir/cnf.cpp.o.d"
  "CMakeFiles/ccfsp_reductions.dir/gadget_thm2.cpp.o"
  "CMakeFiles/ccfsp_reductions.dir/gadget_thm2.cpp.o.d"
  "CMakeFiles/ccfsp_reductions.dir/gadgets_thm1.cpp.o"
  "CMakeFiles/ccfsp_reductions.dir/gadgets_thm1.cpp.o.d"
  "CMakeFiles/ccfsp_reductions.dir/qbf.cpp.o"
  "CMakeFiles/ccfsp_reductions.dir/qbf.cpp.o.d"
  "CMakeFiles/ccfsp_reductions.dir/sat_solver.cpp.o"
  "CMakeFiles/ccfsp_reductions.dir/sat_solver.cpp.o.d"
  "libccfsp_reductions.a"
  "libccfsp_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
