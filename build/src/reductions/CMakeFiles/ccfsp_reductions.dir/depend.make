# Empty dependencies file for ccfsp_reductions.
# This may be replaced when dependencies are built.
