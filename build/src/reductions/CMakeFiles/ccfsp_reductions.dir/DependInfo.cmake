
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reductions/cnf.cpp" "src/reductions/CMakeFiles/ccfsp_reductions.dir/cnf.cpp.o" "gcc" "src/reductions/CMakeFiles/ccfsp_reductions.dir/cnf.cpp.o.d"
  "/root/repo/src/reductions/gadget_thm2.cpp" "src/reductions/CMakeFiles/ccfsp_reductions.dir/gadget_thm2.cpp.o" "gcc" "src/reductions/CMakeFiles/ccfsp_reductions.dir/gadget_thm2.cpp.o.d"
  "/root/repo/src/reductions/gadgets_thm1.cpp" "src/reductions/CMakeFiles/ccfsp_reductions.dir/gadgets_thm1.cpp.o" "gcc" "src/reductions/CMakeFiles/ccfsp_reductions.dir/gadgets_thm1.cpp.o.d"
  "/root/repo/src/reductions/qbf.cpp" "src/reductions/CMakeFiles/ccfsp_reductions.dir/qbf.cpp.o" "gcc" "src/reductions/CMakeFiles/ccfsp_reductions.dir/qbf.cpp.o.d"
  "/root/repo/src/reductions/sat_solver.cpp" "src/reductions/CMakeFiles/ccfsp_reductions.dir/sat_solver.cpp.o" "gcc" "src/reductions/CMakeFiles/ccfsp_reductions.dir/sat_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/network/CMakeFiles/ccfsp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/fsp/CMakeFiles/ccfsp_fsp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccfsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
