file(REMOVE_RECURSE
  "libccfsp_reductions.a"
)
