file(REMOVE_RECURSE
  "libccfsp_algebra.a"
)
