# Empty compiler generated dependencies file for ccfsp_algebra.
# This may be replaced when dependencies are built.
