file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_algebra.dir/compose.cpp.o"
  "CMakeFiles/ccfsp_algebra.dir/compose.cpp.o.d"
  "libccfsp_algebra.a"
  "libccfsp_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
