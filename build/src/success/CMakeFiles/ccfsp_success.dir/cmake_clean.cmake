file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_success.dir/baseline.cpp.o"
  "CMakeFiles/ccfsp_success.dir/baseline.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/cyclic.cpp.o"
  "CMakeFiles/ccfsp_success.dir/cyclic.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/game.cpp.o"
  "CMakeFiles/ccfsp_success.dir/game.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/global.cpp.o"
  "CMakeFiles/ccfsp_success.dir/global.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/group.cpp.o"
  "CMakeFiles/ccfsp_success.dir/group.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/linear.cpp.o"
  "CMakeFiles/ccfsp_success.dir/linear.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/poss_decide.cpp.o"
  "CMakeFiles/ccfsp_success.dir/poss_decide.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/simulate.cpp.o"
  "CMakeFiles/ccfsp_success.dir/simulate.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/star.cpp.o"
  "CMakeFiles/ccfsp_success.dir/star.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/tree_pipeline.cpp.o"
  "CMakeFiles/ccfsp_success.dir/tree_pipeline.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/unary_sc.cpp.o"
  "CMakeFiles/ccfsp_success.dir/unary_sc.cpp.o.d"
  "CMakeFiles/ccfsp_success.dir/witness.cpp.o"
  "CMakeFiles/ccfsp_success.dir/witness.cpp.o.d"
  "libccfsp_success.a"
  "libccfsp_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
