# Empty compiler generated dependencies file for ccfsp_success.
# This may be replaced when dependencies are built.
