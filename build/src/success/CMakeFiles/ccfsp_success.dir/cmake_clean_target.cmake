file(REMOVE_RECURSE
  "libccfsp_success.a"
)
