
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/success/baseline.cpp" "src/success/CMakeFiles/ccfsp_success.dir/baseline.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/baseline.cpp.o.d"
  "/root/repo/src/success/cyclic.cpp" "src/success/CMakeFiles/ccfsp_success.dir/cyclic.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/cyclic.cpp.o.d"
  "/root/repo/src/success/game.cpp" "src/success/CMakeFiles/ccfsp_success.dir/game.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/game.cpp.o.d"
  "/root/repo/src/success/global.cpp" "src/success/CMakeFiles/ccfsp_success.dir/global.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/global.cpp.o.d"
  "/root/repo/src/success/group.cpp" "src/success/CMakeFiles/ccfsp_success.dir/group.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/group.cpp.o.d"
  "/root/repo/src/success/linear.cpp" "src/success/CMakeFiles/ccfsp_success.dir/linear.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/linear.cpp.o.d"
  "/root/repo/src/success/poss_decide.cpp" "src/success/CMakeFiles/ccfsp_success.dir/poss_decide.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/poss_decide.cpp.o.d"
  "/root/repo/src/success/simulate.cpp" "src/success/CMakeFiles/ccfsp_success.dir/simulate.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/simulate.cpp.o.d"
  "/root/repo/src/success/star.cpp" "src/success/CMakeFiles/ccfsp_success.dir/star.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/star.cpp.o.d"
  "/root/repo/src/success/tree_pipeline.cpp" "src/success/CMakeFiles/ccfsp_success.dir/tree_pipeline.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/tree_pipeline.cpp.o.d"
  "/root/repo/src/success/unary_sc.cpp" "src/success/CMakeFiles/ccfsp_success.dir/unary_sc.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/unary_sc.cpp.o.d"
  "/root/repo/src/success/witness.cpp" "src/success/CMakeFiles/ccfsp_success.dir/witness.cpp.o" "gcc" "src/success/CMakeFiles/ccfsp_success.dir/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/network/CMakeFiles/ccfsp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/ccfsp_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/ccfsp_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/equiv/CMakeFiles/ccfsp_equiv.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/ccfsp_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/fsp/CMakeFiles/ccfsp_fsp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccfsp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/ccfsp_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
