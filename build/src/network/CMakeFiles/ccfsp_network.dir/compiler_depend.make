# Empty compiler generated dependencies file for ccfsp_network.
# This may be replaced when dependencies are built.
