file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_network.dir/families.cpp.o"
  "CMakeFiles/ccfsp_network.dir/families.cpp.o.d"
  "CMakeFiles/ccfsp_network.dir/generate.cpp.o"
  "CMakeFiles/ccfsp_network.dir/generate.cpp.o.d"
  "CMakeFiles/ccfsp_network.dir/ktree.cpp.o"
  "CMakeFiles/ccfsp_network.dir/ktree.cpp.o.d"
  "CMakeFiles/ccfsp_network.dir/network.cpp.o"
  "CMakeFiles/ccfsp_network.dir/network.cpp.o.d"
  "libccfsp_network.a"
  "libccfsp_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
