file(REMOVE_RECURSE
  "libccfsp_network.a"
)
