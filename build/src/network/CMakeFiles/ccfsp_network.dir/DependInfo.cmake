
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/families.cpp" "src/network/CMakeFiles/ccfsp_network.dir/families.cpp.o" "gcc" "src/network/CMakeFiles/ccfsp_network.dir/families.cpp.o.d"
  "/root/repo/src/network/generate.cpp" "src/network/CMakeFiles/ccfsp_network.dir/generate.cpp.o" "gcc" "src/network/CMakeFiles/ccfsp_network.dir/generate.cpp.o.d"
  "/root/repo/src/network/ktree.cpp" "src/network/CMakeFiles/ccfsp_network.dir/ktree.cpp.o" "gcc" "src/network/CMakeFiles/ccfsp_network.dir/ktree.cpp.o.d"
  "/root/repo/src/network/network.cpp" "src/network/CMakeFiles/ccfsp_network.dir/network.cpp.o" "gcc" "src/network/CMakeFiles/ccfsp_network.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsp/CMakeFiles/ccfsp_fsp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccfsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
