
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantics/failures.cpp" "src/semantics/CMakeFiles/ccfsp_semantics.dir/failures.cpp.o" "gcc" "src/semantics/CMakeFiles/ccfsp_semantics.dir/failures.cpp.o.d"
  "/root/repo/src/semantics/lang.cpp" "src/semantics/CMakeFiles/ccfsp_semantics.dir/lang.cpp.o" "gcc" "src/semantics/CMakeFiles/ccfsp_semantics.dir/lang.cpp.o.d"
  "/root/repo/src/semantics/normal_form.cpp" "src/semantics/CMakeFiles/ccfsp_semantics.dir/normal_form.cpp.o" "gcc" "src/semantics/CMakeFiles/ccfsp_semantics.dir/normal_form.cpp.o.d"
  "/root/repo/src/semantics/poss_automaton.cpp" "src/semantics/CMakeFiles/ccfsp_semantics.dir/poss_automaton.cpp.o" "gcc" "src/semantics/CMakeFiles/ccfsp_semantics.dir/poss_automaton.cpp.o.d"
  "/root/repo/src/semantics/possibilities.cpp" "src/semantics/CMakeFiles/ccfsp_semantics.dir/possibilities.cpp.o" "gcc" "src/semantics/CMakeFiles/ccfsp_semantics.dir/possibilities.cpp.o.d"
  "/root/repo/src/semantics/unary.cpp" "src/semantics/CMakeFiles/ccfsp_semantics.dir/unary.cpp.o" "gcc" "src/semantics/CMakeFiles/ccfsp_semantics.dir/unary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsp/CMakeFiles/ccfsp_fsp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccfsp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/ccfsp_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
