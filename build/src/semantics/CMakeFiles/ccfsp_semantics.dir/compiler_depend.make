# Empty compiler generated dependencies file for ccfsp_semantics.
# This may be replaced when dependencies are built.
