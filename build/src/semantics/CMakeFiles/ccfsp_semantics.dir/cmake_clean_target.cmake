file(REMOVE_RECURSE
  "libccfsp_semantics.a"
)
