file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_semantics.dir/failures.cpp.o"
  "CMakeFiles/ccfsp_semantics.dir/failures.cpp.o.d"
  "CMakeFiles/ccfsp_semantics.dir/lang.cpp.o"
  "CMakeFiles/ccfsp_semantics.dir/lang.cpp.o.d"
  "CMakeFiles/ccfsp_semantics.dir/normal_form.cpp.o"
  "CMakeFiles/ccfsp_semantics.dir/normal_form.cpp.o.d"
  "CMakeFiles/ccfsp_semantics.dir/poss_automaton.cpp.o"
  "CMakeFiles/ccfsp_semantics.dir/poss_automaton.cpp.o.d"
  "CMakeFiles/ccfsp_semantics.dir/possibilities.cpp.o"
  "CMakeFiles/ccfsp_semantics.dir/possibilities.cpp.o.d"
  "CMakeFiles/ccfsp_semantics.dir/unary.cpp.o"
  "CMakeFiles/ccfsp_semantics.dir/unary.cpp.o.d"
  "libccfsp_semantics.a"
  "libccfsp_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
