file(REMOVE_RECURSE
  "libccfsp_equiv.a"
)
