# Empty compiler generated dependencies file for ccfsp_equiv.
# This may be replaced when dependencies are built.
