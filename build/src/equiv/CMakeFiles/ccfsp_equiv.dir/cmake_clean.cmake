file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_equiv.dir/bisim.cpp.o"
  "CMakeFiles/ccfsp_equiv.dir/bisim.cpp.o.d"
  "CMakeFiles/ccfsp_equiv.dir/equivalences.cpp.o"
  "CMakeFiles/ccfsp_equiv.dir/equivalences.cpp.o.d"
  "libccfsp_equiv.a"
  "libccfsp_equiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
