
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/equiv/bisim.cpp" "src/equiv/CMakeFiles/ccfsp_equiv.dir/bisim.cpp.o" "gcc" "src/equiv/CMakeFiles/ccfsp_equiv.dir/bisim.cpp.o.d"
  "/root/repo/src/equiv/equivalences.cpp" "src/equiv/CMakeFiles/ccfsp_equiv.dir/equivalences.cpp.o" "gcc" "src/equiv/CMakeFiles/ccfsp_equiv.dir/equivalences.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/semantics/CMakeFiles/ccfsp_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/fsp/CMakeFiles/ccfsp_fsp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccfsp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/ccfsp_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
