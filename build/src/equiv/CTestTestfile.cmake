# CMake generated Testfile for 
# Source directory: /root/repo/src/equiv
# Build directory: /root/repo/build/src/equiv
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
