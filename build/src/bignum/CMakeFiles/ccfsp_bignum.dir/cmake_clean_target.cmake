file(REMOVE_RECURSE
  "libccfsp_bignum.a"
)
