file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_bignum.dir/bigint.cpp.o"
  "CMakeFiles/ccfsp_bignum.dir/bigint.cpp.o.d"
  "CMakeFiles/ccfsp_bignum.dir/rational.cpp.o"
  "CMakeFiles/ccfsp_bignum.dir/rational.cpp.o.d"
  "libccfsp_bignum.a"
  "libccfsp_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
