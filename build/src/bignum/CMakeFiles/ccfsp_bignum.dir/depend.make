# Empty dependencies file for ccfsp_bignum.
# This may be replaced when dependencies are built.
