# Empty dependencies file for sat_to_network.
# This may be replaced when dependencies are built.
