file(REMOVE_RECURSE
  "CMakeFiles/sat_to_network.dir/sat_to_network.cpp.o"
  "CMakeFiles/sat_to_network.dir/sat_to_network.cpp.o.d"
  "sat_to_network"
  "sat_to_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_to_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
