
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/client_server.cpp" "examples/CMakeFiles/client_server.dir/client_server.cpp.o" "gcc" "examples/CMakeFiles/client_server.dir/client_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/success/CMakeFiles/ccfsp_success.dir/DependInfo.cmake"
  "/root/repo/build/src/reductions/CMakeFiles/ccfsp_reductions.dir/DependInfo.cmake"
  "/root/repo/build/src/equiv/CMakeFiles/ccfsp_equiv.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/ccfsp_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/ccfsp_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/ccfsp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/fsp/CMakeFiles/ccfsp_fsp.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/ccfsp_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/ccfsp_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccfsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
