# Empty dependencies file for ccfsp_analyze.
# This may be replaced when dependencies are built.
