file(REMOVE_RECURSE
  "CMakeFiles/ccfsp_analyze.dir/ccfsp_analyze.cpp.o"
  "CMakeFiles/ccfsp_analyze.dir/ccfsp_analyze.cpp.o.d"
  "ccfsp_analyze"
  "ccfsp_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccfsp_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
