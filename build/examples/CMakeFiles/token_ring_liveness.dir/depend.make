# Empty dependencies file for token_ring_liveness.
# This may be replaced when dependencies are built.
