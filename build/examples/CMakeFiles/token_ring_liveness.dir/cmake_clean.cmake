file(REMOVE_RECURSE
  "CMakeFiles/token_ring_liveness.dir/token_ring_liveness.cpp.o"
  "CMakeFiles/token_ring_liveness.dir/token_ring_liveness.cpp.o.d"
  "token_ring_liveness"
  "token_ring_liveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_ring_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
