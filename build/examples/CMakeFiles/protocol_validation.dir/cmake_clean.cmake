file(REMOVE_RECURSE
  "CMakeFiles/protocol_validation.dir/protocol_validation.cpp.o"
  "CMakeFiles/protocol_validation.dir/protocol_validation.cpp.o.d"
  "protocol_validation"
  "protocol_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
