# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dining_philosophers "/root/repo/build/examples/dining_philosophers" "3")
set_tests_properties(example_dining_philosophers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_validation "/root/repo/build/examples/protocol_validation")
set_tests_properties(example_protocol_validation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sat_to_network "/root/repo/build/examples/sat_to_network")
set_tests_properties(example_sat_to_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_token_ring_liveness "/root/repo/build/examples/token_ring_liveness" "4")
set_tests_properties(example_token_ring_liveness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_client_server "/root/repo/build/examples/client_server" "3")
set_tests_properties(example_client_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_acyclic "/root/repo/build/examples/ccfsp_analyze" "--witness" "/root/repo/models/lossy_rpc.ccfsp")
set_tests_properties(example_analyze_acyclic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_cyclic "/root/repo/build/examples/ccfsp_analyze" "--cyclic" "--witness" "--distinguished" "Writer" "/root/repo/models/readers_writers.ccfsp")
set_tests_properties(example_analyze_cyclic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_simulate "/root/repo/build/examples/ccfsp_analyze" "--simulate" "20" "--cyclic" "/root/repo/models/bounded_buffer.ccfsp")
set_tests_properties(example_analyze_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
