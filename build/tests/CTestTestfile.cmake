# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/bignum_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/fsp_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_test[1]_include.cmake")
include("/root/repo/build/tests/equiv_test[1]_include.cmake")
include("/root/repo/build/tests/success_test[1]_include.cmake")
include("/root/repo/build/tests/reductions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
