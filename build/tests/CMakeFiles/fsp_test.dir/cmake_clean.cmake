file(REMOVE_RECURSE
  "CMakeFiles/fsp_test.dir/fsp/builder_test.cpp.o"
  "CMakeFiles/fsp_test.dir/fsp/builder_test.cpp.o.d"
  "CMakeFiles/fsp_test.dir/fsp/cache_test.cpp.o"
  "CMakeFiles/fsp_test.dir/fsp/cache_test.cpp.o.d"
  "CMakeFiles/fsp_test.dir/fsp/fsp_test.cpp.o"
  "CMakeFiles/fsp_test.dir/fsp/fsp_test.cpp.o.d"
  "CMakeFiles/fsp_test.dir/fsp/generate_test.cpp.o"
  "CMakeFiles/fsp_test.dir/fsp/generate_test.cpp.o.d"
  "CMakeFiles/fsp_test.dir/fsp/parse_test.cpp.o"
  "CMakeFiles/fsp_test.dir/fsp/parse_test.cpp.o.d"
  "CMakeFiles/fsp_test.dir/fsp/rename_test.cpp.o"
  "CMakeFiles/fsp_test.dir/fsp/rename_test.cpp.o.d"
  "fsp_test"
  "fsp_test.pdb"
  "fsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
