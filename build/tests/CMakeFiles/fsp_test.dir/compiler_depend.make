# Empty compiler generated dependencies file for fsp_test.
# This may be replaced when dependencies are built.
