# Empty compiler generated dependencies file for success_test.
# This may be replaced when dependencies are built.
