file(REMOVE_RECURSE
  "CMakeFiles/success_test.dir/success/baseline_test.cpp.o"
  "CMakeFiles/success_test.dir/success/baseline_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/cyclic_test.cpp.o"
  "CMakeFiles/success_test.dir/success/cyclic_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/game_test.cpp.o"
  "CMakeFiles/success_test.dir/success/game_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/global_test.cpp.o"
  "CMakeFiles/success_test.dir/success/global_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/group_test.cpp.o"
  "CMakeFiles/success_test.dir/success/group_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/linear_test.cpp.o"
  "CMakeFiles/success_test.dir/success/linear_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/poss_decide_test.cpp.o"
  "CMakeFiles/success_test.dir/success/poss_decide_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/simulate_test.cpp.o"
  "CMakeFiles/success_test.dir/success/simulate_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/star_test.cpp.o"
  "CMakeFiles/success_test.dir/success/star_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/strategy_test.cpp.o"
  "CMakeFiles/success_test.dir/success/strategy_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/theorem3_test.cpp.o"
  "CMakeFiles/success_test.dir/success/theorem3_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/theorem4_test.cpp.o"
  "CMakeFiles/success_test.dir/success/theorem4_test.cpp.o.d"
  "CMakeFiles/success_test.dir/success/witness_test.cpp.o"
  "CMakeFiles/success_test.dir/success/witness_test.cpp.o.d"
  "success_test"
  "success_test.pdb"
  "success_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/success_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
