
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/success/baseline_test.cpp" "tests/CMakeFiles/success_test.dir/success/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/baseline_test.cpp.o.d"
  "/root/repo/tests/success/cyclic_test.cpp" "tests/CMakeFiles/success_test.dir/success/cyclic_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/cyclic_test.cpp.o.d"
  "/root/repo/tests/success/game_test.cpp" "tests/CMakeFiles/success_test.dir/success/game_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/game_test.cpp.o.d"
  "/root/repo/tests/success/global_test.cpp" "tests/CMakeFiles/success_test.dir/success/global_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/global_test.cpp.o.d"
  "/root/repo/tests/success/group_test.cpp" "tests/CMakeFiles/success_test.dir/success/group_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/group_test.cpp.o.d"
  "/root/repo/tests/success/linear_test.cpp" "tests/CMakeFiles/success_test.dir/success/linear_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/linear_test.cpp.o.d"
  "/root/repo/tests/success/poss_decide_test.cpp" "tests/CMakeFiles/success_test.dir/success/poss_decide_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/poss_decide_test.cpp.o.d"
  "/root/repo/tests/success/simulate_test.cpp" "tests/CMakeFiles/success_test.dir/success/simulate_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/simulate_test.cpp.o.d"
  "/root/repo/tests/success/star_test.cpp" "tests/CMakeFiles/success_test.dir/success/star_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/star_test.cpp.o.d"
  "/root/repo/tests/success/strategy_test.cpp" "tests/CMakeFiles/success_test.dir/success/strategy_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/strategy_test.cpp.o.d"
  "/root/repo/tests/success/theorem3_test.cpp" "tests/CMakeFiles/success_test.dir/success/theorem3_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/theorem3_test.cpp.o.d"
  "/root/repo/tests/success/theorem4_test.cpp" "tests/CMakeFiles/success_test.dir/success/theorem4_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/theorem4_test.cpp.o.d"
  "/root/repo/tests/success/witness_test.cpp" "tests/CMakeFiles/success_test.dir/success/witness_test.cpp.o" "gcc" "tests/CMakeFiles/success_test.dir/success/witness_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/success/CMakeFiles/ccfsp_success.dir/DependInfo.cmake"
  "/root/repo/build/src/reductions/CMakeFiles/ccfsp_reductions.dir/DependInfo.cmake"
  "/root/repo/build/src/equiv/CMakeFiles/ccfsp_equiv.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/ccfsp_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/ccfsp_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/ccfsp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/fsp/CMakeFiles/ccfsp_fsp.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/ccfsp_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/ccfsp_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccfsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
