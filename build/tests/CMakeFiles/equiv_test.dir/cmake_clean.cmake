file(REMOVE_RECURSE
  "CMakeFiles/equiv_test.dir/equiv/bisim_test.cpp.o"
  "CMakeFiles/equiv_test.dir/equiv/bisim_test.cpp.o.d"
  "CMakeFiles/equiv_test.dir/equiv/equivalences_test.cpp.o"
  "CMakeFiles/equiv_test.dir/equiv/equivalences_test.cpp.o.d"
  "equiv_test"
  "equiv_test.pdb"
  "equiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
